//! A compact, deterministic binary codec for wire messages and hashing.
//!
//! Relay APIs and gossip payloads need a canonical byte representation:
//! the same value must always encode to the same bytes so hashes and
//! signatures are stable. This module provides a minimal length-prefixed
//! big-endian codec over [`bytes`] buffers — deliberately simpler than RLP
//! or SSZ, but with the same canonical-form property.
//!
//! Varints are used for lengths and small integers: 7 bits per byte, MSB as
//! the continuation flag, canonical (no redundant trailing zero groups).

use crate::primitives::{Address, BlsPublicKey, H256};
use crate::time::Slot;
use crate::units::{Gas, GasPrice, Wei};
use crate::EthTypesError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serializes values into a growable buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an LEB128-style varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Appends a fixed-width big-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.put_slice(&v.to_be_bytes());
    }

    /// Appends raw bytes with a varint length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Appends fixed-size raw bytes with no length prefix.
    pub fn put_fixed(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Finishes encoding and returns the frozen buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserializes values from a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf }
    }

    /// Reads a varint.
    pub fn get_varint(&mut self) -> Result<u64, EthTypesError> {
        let mut out = 0u64;
        let mut shift = 0u32;
        loop {
            if !self.buf.has_remaining() {
                return Err(EthTypesError::UnexpectedEof);
            }
            let byte = self.buf.get_u8();
            out |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
            shift += 7;
            if shift >= 64 {
                return Err(EthTypesError::BadTag(byte));
            }
        }
    }

    /// Reads a fixed-width big-endian u128.
    pub fn get_u128(&mut self) -> Result<u128, EthTypesError> {
        if self.buf.remaining() < 16 {
            return Err(EthTypesError::UnexpectedEof);
        }
        Ok(self.buf.get_u128())
    }

    /// Reads a varint-length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, EthTypesError> {
        let len = self.get_varint()? as usize;
        if self.buf.remaining() < len {
            return Err(EthTypesError::UnexpectedEof);
        }
        let mut out = vec![0u8; len];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Reads exactly `N` bytes.
    pub fn get_fixed<const N: usize>(&mut self) -> Result<[u8; N], EthTypesError> {
        if self.buf.remaining() < N {
            return Err(EthTypesError::UnexpectedEof);
        }
        let mut out = [0u8; N];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    /// Bytes left to decode.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }
}

/// Types with a canonical binary encoding.
pub trait Encodable {
    /// Appends this value's canonical encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encodes into a fresh buffer.
    fn encoded(&self) -> Bytes {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Keccak-256 of the canonical encoding.
    fn canonical_hash(&self) -> H256 {
        H256::of(&self.encoded())
    }
}

/// Types decodable from their canonical encoding.
pub trait Decodable: Sized {
    /// Reads one value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError>;

    /// Convenience: decodes a full buffer (trailing bytes are an error
    /// surfaced as `BadTag(0xff)` to keep the error enum small).
    fn decoded(data: &[u8]) -> Result<Self, EthTypesError> {
        let mut dec = Decoder::new(data);
        let v = Self::decode(&mut dec)?;
        if dec.remaining() != 0 {
            return Err(EthTypesError::BadTag(0xff));
        }
        Ok(v)
    }
}

macro_rules! impl_varint_codec {
    ($($t:ty),*) => {$(
        impl Encodable for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.put_varint(*self as u64);
            }
        }
        impl Decodable for $t {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
                Ok(dec.get_varint()? as $t)
            }
        }
    )*};
}
impl_varint_codec!(u8, u16, u32, u64);

impl Encodable for u128 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(*self);
    }
}
impl Decodable for u128 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        dec.get_u128()
    }
}

impl Encodable for Address {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.0);
    }
}
impl Decodable for Address {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(Address(dec.get_fixed::<20>()?))
    }
}

impl Encodable for H256 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.0);
    }
}
impl Decodable for H256 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(H256(dec.get_fixed::<32>()?))
    }
}

impl Encodable for BlsPublicKey {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_fixed(&self.0);
    }
}
impl Decodable for BlsPublicKey {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(BlsPublicKey(dec.get_fixed::<48>()?))
    }
}

impl Encodable for Wei {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(self.0);
    }
}
impl Decodable for Wei {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(Wei(dec.get_u128()?))
    }
}

impl Encodable for GasPrice {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u128(self.0);
    }
}
impl Decodable for GasPrice {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(GasPrice(dec.get_u128()?))
    }
}

impl Encodable for Gas {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.0);
    }
}
impl Decodable for Gas {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(Gas(dec.get_varint()?))
    }
}

impl Encodable for Slot {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.0);
    }
}
impl Decodable for Slot {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        Ok(Slot(dec.get_varint()?))
    }
}

impl Encodable for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self.as_bytes());
    }
}
impl Decodable for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        let bytes = dec.get_bytes()?;
        String::from_utf8(bytes).map_err(|_| EthTypesError::BadTag(0xfe))
    }
}

impl<T: Encodable> Encodable for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
}
impl<T: Decodable> Decodable for Vec<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        let len = dec.get_varint()? as usize;
        // Guard against absurd lengths from corrupt input.
        if len > dec.remaining() {
            return Err(EthTypesError::UnexpectedEof);
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Encodable> Encodable for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_varint(0),
            Some(v) => {
                enc.put_varint(1);
                v.encode(enc);
            }
        }
    }
}
impl<T: Decodable> Decodable for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, EthTypesError> {
        match dec.get_varint()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            t => Err(EthTypesError::BadTag(t as u8)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encodable + Decodable + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.encoded();
        assert_eq!(T::decoded(&bytes).unwrap(), v);
    }

    #[test]
    fn varint_round_trips_across_widths() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            round_trip(v);
        }
    }

    #[test]
    fn varint_is_minimal_for_small_values() {
        assert_eq!(5u64.encoded().len(), 1);
        assert_eq!(127u64.encoded().len(), 1);
        assert_eq!(128u64.encoded().len(), 2);
    }

    #[test]
    fn fixed_types_round_trip() {
        round_trip(Address::derive("codec"));
        round_trip(H256::derive("codec"));
        round_trip(BlsPublicKey::derive("codec"));
        round_trip(Wei::from_eth(12.5));
        round_trip(Gas(21_000));
        round_trip(GasPrice::from_gwei(33.3));
        round_trip(Slot(98_765));
    }

    #[test]
    fn collections_round_trip() {
        round_trip(vec![Slot(1), Slot(2), Slot(3)]);
        round_trip(Vec::<Wei>::new());
        round_trip(Some(Wei::from_eth(1.0)));
        round_trip(Option::<Wei>::None);
        round_trip("relay.ultrasound.money".to_string());
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = Address::derive("x").encoded();
        assert_eq!(
            Address::decoded(&bytes[..10]),
            Err(EthTypesError::UnexpectedEof)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Slot(5).encoded().to_vec();
        bytes.push(0);
        assert!(Slot::decoded(&bytes).is_err());
    }

    #[test]
    fn corrupt_vec_length_does_not_allocate_absurdly() {
        // Claim a billion elements with only 2 bytes of payload.
        let mut enc = Encoder::new();
        enc.put_varint(1_000_000_000);
        enc.put_varint(7);
        let bytes = enc.finish();
        assert_eq!(
            Vec::<u64>::decoded(&bytes),
            Err(EthTypesError::UnexpectedEof)
        );
    }

    #[test]
    fn canonical_hash_is_stable() {
        let a = Address::derive("h");
        assert_eq!(a.canonical_hash(), a.canonical_hash());
        assert_ne!(a.canonical_hash(), Address::derive("h2").canonical_hash());
    }

    #[test]
    fn overlong_varint_rejected() {
        let bytes = [0xffu8; 11];
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_varint().is_err());
    }
}
