//! Execution traces — internal value transfers.
//!
//! The paper traces every transaction to find (i) direct ETH transfers to
//! the block's fee recipient (the "bribe" channel of block value, §3.1) and
//! (ii) ETH flows touching sanctioned addresses (§3.1 "Sanctioned
//! Transactions"). A [`TraceAction`] is one internal transfer observed while
//! executing a transaction, the same shape Erigon's `trace_block` returns.

use crate::primitives::Address;
use crate::tx::TxHash;
use crate::units::Wei;
use serde::{Deserialize, Serialize};

/// The kind of internal action that moved value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TraceKind {
    /// The transaction's own top-level value transfer.
    TopLevel,
    /// A nested call that transferred ETH (e.g. a searcher contract paying
    /// the coinbase, a liquidation bonus flowing out).
    InternalCall,
    /// A reward payment injected by the protocol or the block producer
    /// (e.g. the PBS builder→proposer payment executes as a TopLevel
    /// transfer, but subsidies may appear here).
    Reward,
}

/// One internal ETH transfer recorded while executing a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TraceAction {
    /// Transaction during which the transfer happened.
    pub tx_hash: TxHash,
    /// Sender of the internal transfer.
    pub from: Address,
    /// Recipient of the internal transfer.
    pub to: Address,
    /// Amount moved.
    pub value: Wei,
    /// What kind of action produced it.
    pub kind: TraceKind,
}

impl TraceAction {
    /// True if this trace touches `addr` on either side with nonzero value —
    /// the paper's criterion for a sanctioned interaction.
    pub fn touches(&self, addr: Address) -> bool {
        !self.value.is_zero() && (self.from == addr || self.to == addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitives::H256;

    fn trace(from: &str, to: &str, eth: f64) -> TraceAction {
        TraceAction {
            tx_hash: H256::derive("tx"),
            from: Address::derive(from),
            to: Address::derive(to),
            value: Wei::from_eth(eth),
            kind: TraceKind::InternalCall,
        }
    }

    #[test]
    fn touches_either_side() {
        let t = trace("a", "b", 1.0);
        assert!(t.touches(Address::derive("a")));
        assert!(t.touches(Address::derive("b")));
        assert!(!t.touches(Address::derive("c")));
    }

    #[test]
    fn zero_value_does_not_count() {
        // The paper requires "any nonzero amount of ETH".
        let t = trace("a", "b", 0.0);
        assert!(!t.touches(Address::derive("a")));
    }
}
