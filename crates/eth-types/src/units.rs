//! Value and gas units: [`Wei`], [`Gas`], and [`GasPrice`].
//!
//! `Wei` is a 128-bit unsigned quantity (1 ETH = 10^18 wei); u128 comfortably
//! covers the total ETH supply (~1.2e26 wei) with 12 orders of magnitude of
//! headroom, so aggregate sums over the whole study period cannot overflow.
//! Arithmetic is checked in debug builds and saturating in the explicit
//! `saturating_*` helpers used by accounting code.

use serde::{Deserialize, Serialize};

/// Number of wei in one ETH.
pub const WEI_PER_ETH: u128 = 1_000_000_000_000_000_000;

/// Number of wei in one gwei (the conventional gas-price unit).
pub const WEI_PER_GWEI: u128 = 1_000_000_000;

/// An amount of wei — Ethereum's base currency unit.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Wei(pub u128);

impl Wei {
    /// Zero wei.
    pub const ZERO: Wei = Wei(0);
    /// One ETH.
    pub const ETH: Wei = Wei(WEI_PER_ETH);
    /// One gwei.
    pub const GWEI: Wei = Wei(WEI_PER_GWEI);

    /// Constructs from a (non-negative, finite) ETH amount.
    ///
    /// Panics if `eth` is negative, NaN, or too large for u128.
    pub fn from_eth(eth: f64) -> Self {
        assert!(eth.is_finite() && eth >= 0.0, "Wei::from_eth({eth})");
        Wei((eth * WEI_PER_ETH as f64) as u128)
    }

    /// Constructs from a whole number of gwei.
    pub fn from_gwei(gwei: u64) -> Self {
        Wei(gwei as u128 * WEI_PER_GWEI)
    }

    /// Converts to ETH as f64 (analysis/reporting only — lossy above 2^53 wei
    /// of *precision*, which is fine for aggregate statistics).
    pub fn as_eth(&self) -> f64 {
        self.0 as f64 / WEI_PER_ETH as f64
    }

    /// Converts to gwei as f64.
    pub fn as_gwei(&self) -> f64 {
        self.0 as f64 / WEI_PER_GWEI as f64
    }

    /// Checked subtraction: `None` on underflow.
    pub fn checked_sub(self, rhs: Wei) -> Option<Wei> {
        self.0.checked_sub(rhs.0).map(Wei)
    }

    /// Saturating subtraction, clamping at zero.
    pub fn saturating_sub(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Wei) -> Wei {
        Wei(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by a gas amount (wei-per-gas × gas = wei).
    pub fn mul_gas(self, gas: Gas) -> Wei {
        Wei(self.0 * gas.0 as u128)
    }

    /// Scales by a rational `num/den`, rounding down. Used for fee splits.
    pub fn mul_ratio(self, num: u128, den: u128) -> Wei {
        assert!(den != 0, "division by zero ratio");
        Wei(self.0 / den * num + self.0 % den * num / den)
    }

    /// Returns the minimum of two amounts.
    pub fn min(self, other: Wei) -> Wei {
        Wei(self.0.min(other.0))
    }

    /// Returns the maximum of two amounts.
    pub fn max(self, other: Wei) -> Wei {
        Wei(self.0.max(other.0))
    }

    /// True iff the amount is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for Wei {
    type Output = Wei;
    fn add(self, rhs: Wei) -> Wei {
        Wei(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Wei {
    fn add_assign(&mut self, rhs: Wei) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Wei {
    type Output = Wei;
    fn sub(self, rhs: Wei) -> Wei {
        Wei(self.0 - rhs.0)
    }
}

impl std::ops::SubAssign for Wei {
    fn sub_assign(&mut self, rhs: Wei) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Wei {
    fn sum<I: Iterator<Item = Wei>>(iter: I) -> Wei {
        iter.fold(Wei::ZERO, |acc, w| acc.saturating_add(w))
    }
}

impl std::fmt::Debug for Wei {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} wei", self.0)
    }
}

impl std::fmt::Display for Wei {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6} ETH", self.as_eth())
    }
}

/// An amount of gas — the execution layer's unit of computation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Gas(pub u64);

impl Gas {
    /// Zero gas.
    pub const ZERO: Gas = Gas(0);
    /// The intrinsic cost of a plain ETH transfer.
    pub const TX_BASE: Gas = Gas(21_000);
    /// Post-merge mainnet block gas limit (30M).
    pub const BLOCK_LIMIT: Gas = Gas(30_000_000);
    /// EIP-1559 target block size (half the limit, 15M).
    pub const BLOCK_TARGET: Gas = Gas(15_000_000);

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Gas) -> Gas {
        Gas(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Gas) -> Gas {
        Gas(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Add for Gas {
    type Output = Gas;
    fn add(self, rhs: Gas) -> Gas {
        Gas(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Gas {
    fn add_assign(&mut self, rhs: Gas) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Gas {
    type Output = Gas;
    fn sub(self, rhs: Gas) -> Gas {
        Gas(self.0 - rhs.0)
    }
}

impl std::iter::Sum for Gas {
    fn sum<I: Iterator<Item = Gas>>(iter: I) -> Gas {
        iter.fold(Gas::ZERO, |acc, g| acc.saturating_add(g))
    }
}

impl std::fmt::Debug for Gas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} gas", self.0)
    }
}

impl std::fmt::Display for Gas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A price per unit of gas, in wei — base fees and priority fees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct GasPrice(pub u128);

impl GasPrice {
    /// Zero price.
    pub const ZERO: GasPrice = GasPrice(0);

    /// Constructs from gwei-per-gas.
    pub fn from_gwei(gwei: f64) -> Self {
        assert!(
            gwei.is_finite() && gwei >= 0.0,
            "GasPrice::from_gwei({gwei})"
        );
        GasPrice((gwei * WEI_PER_GWEI as f64) as u128)
    }

    /// Converts to gwei as f64.
    pub fn as_gwei(&self) -> f64 {
        self.0 as f64 / WEI_PER_GWEI as f64
    }

    /// Total wei for `gas` units at this price.
    pub fn cost(self, gas: Gas) -> Wei {
        Wei(self.0 * gas.0 as u128)
    }

    /// Saturating subtraction of two prices (effective tip computation).
    pub fn saturating_sub(self, rhs: GasPrice) -> GasPrice {
        GasPrice(self.0.saturating_sub(rhs.0))
    }

    /// Minimum of two prices.
    pub fn min(self, other: GasPrice) -> GasPrice {
        GasPrice(self.0.min(other.0))
    }
}

impl std::ops::Add for GasPrice {
    type Output = GasPrice;
    fn add(self, rhs: GasPrice) -> GasPrice {
        GasPrice(self.0 + rhs.0)
    }
}

impl std::fmt::Debug for GasPrice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} gwei/gas", self.as_gwei())
    }
}

impl std::fmt::Display for GasPrice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} gwei", self.as_gwei())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_round_trip() {
        let w = Wei::from_eth(0.1126); // the paper's average per-block reward
        assert!((w.as_eth() - 0.1126).abs() < 1e-12);
    }

    #[test]
    fn gwei_conversions() {
        assert_eq!(Wei::from_gwei(1), Wei(WEI_PER_GWEI));
        assert_eq!(GasPrice::from_gwei(2.0).0, 2 * WEI_PER_GWEI);
    }

    #[test]
    fn cost_multiplies_price_by_gas() {
        let p = GasPrice::from_gwei(10.0);
        assert_eq!(p.cost(Gas::TX_BASE), Wei(10 * WEI_PER_GWEI * 21_000));
    }

    #[test]
    fn mul_ratio_is_exact_for_clean_splits() {
        let w = Wei::from_eth(1.0);
        assert_eq!(w.mul_ratio(1, 2) + w.mul_ratio(1, 2), w);
        assert_eq!(w.mul_ratio(9, 10), Wei::from_eth(0.9));
    }

    #[test]
    fn mul_ratio_does_not_overflow_on_large_values() {
        // Total ETH supply scaled by 99/100 must not overflow u128.
        let supply = Wei(120_000_000 * WEI_PER_ETH);
        let scaled = supply.mul_ratio(99, 100);
        assert!(scaled < supply);
        assert_eq!(scaled, Wei(118_800_000 * WEI_PER_ETH));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(Wei(5).saturating_sub(Wei(10)), Wei::ZERO);
        assert_eq!(Wei(u128::MAX).saturating_add(Wei(1)), Wei(u128::MAX));
        assert_eq!(Gas(5).saturating_sub(Gas(10)), Gas::ZERO);
    }

    #[test]
    fn checked_sub_detects_underflow() {
        assert_eq!(Wei(5).checked_sub(Wei(10)), None);
        assert_eq!(Wei(10).checked_sub(Wei(5)), Some(Wei(5)));
    }

    #[test]
    fn sum_saturates_rather_than_panics() {
        let total: Wei = vec![Wei(u128::MAX), Wei(1)].into_iter().sum();
        assert_eq!(total, Wei(u128::MAX));
    }

    #[test]
    fn block_constants_match_mainnet() {
        assert_eq!(Gas::BLOCK_LIMIT.0, 2 * Gas::BLOCK_TARGET.0);
        assert_eq!(Gas::BLOCK_TARGET.0, 15_000_000);
    }

    #[test]
    #[should_panic]
    fn from_eth_rejects_negative() {
        let _ = Wei::from_eth(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Wei::from_eth(1.5)), "1.500000 ETH");
        assert_eq!(format!("{}", Gas::TX_BASE), "21000");
    }
}
