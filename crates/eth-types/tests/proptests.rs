//! Property-based tests for the eth-types foundations: codec round-trips,
//! hex round-trips, wei arithmetic invariants, and calendar consistency.

use eth_types::codec::{Decodable, Encodable};
use eth_types::{Address, DayIndex, Gas, GasPrice, Slot, StudyCalendar, Wei, H256};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let bytes = v.encoded();
        prop_assert_eq!(u64::decoded(&bytes).unwrap(), v);
    }

    #[test]
    fn wei_codec_round_trip(v in any::<u128>()) {
        let w = Wei(v);
        prop_assert_eq!(Wei::decoded(&w.encoded()).unwrap(), w);
    }

    #[test]
    fn address_hex_round_trip(bytes in any::<[u8; 20]>()) {
        let a = Address(bytes);
        let s = format!("{a}");
        prop_assert_eq!(Address::from_hex(&s).unwrap(), a);
    }

    #[test]
    fn h256_hex_round_trip(bytes in any::<[u8; 32]>()) {
        let h = H256(bytes);
        let s = format!("{h}");
        prop_assert_eq!(H256::from_hex(&s).unwrap(), h);
    }

    #[test]
    fn wei_mul_ratio_never_exceeds_input(v in any::<u128>(), num in 0u128..=100, den in 1u128..=100) {
        prop_assume!(num <= den);
        let w = Wei(v);
        prop_assert!(w.mul_ratio(num, den) <= w);
    }

    #[test]
    fn wei_mul_ratio_identity(v in any::<u128>()) {
        prop_assert_eq!(Wei(v).mul_ratio(1, 1), Wei(v));
    }

    #[test]
    fn wei_saturating_sub_never_underflows(a in any::<u128>(), b in any::<u128>()) {
        let r = Wei(a).saturating_sub(Wei(b));
        prop_assert!(r.0 <= a);
    }

    #[test]
    fn effective_tip_never_exceeds_caps(
        tip_gwei in 0.0f64..1000.0,
        cap_gwei in 0.0f64..1000.0,
        base_gwei in 0.0f64..1000.0,
    ) {
        let tx = eth_types::Transaction::transfer(
            Address::derive("p"),
            Address::derive("q"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(tip_gwei),
            GasPrice::from_gwei(cap_gwei),
        );
        let base = GasPrice::from_gwei(base_gwei);
        let eff = tx.effective_tip(base);
        prop_assert!(eff <= tx.max_priority_fee_per_gas);
        prop_assert!(GasPrice(base.0 + eff.0) <= tx.max_fee_per_gas || eff == GasPrice::ZERO);
    }

    #[test]
    fn calendar_day_of_slot_is_monotone(
        bpd in 1u32..=7200,
        s1 in 0u64..100_000,
        s2 in 0u64..100_000,
    ) {
        let cal = StudyCalendar::new(bpd, 198);
        prop_assume!(s1 <= s2);
        prop_assert!(cal.day_of_slot(Slot(s1)) <= cal.day_of_slot(Slot(s2)));
    }

    #[test]
    fn calendar_first_slot_inverts_day_of_slot(bpd in 1u32..=7200, day in 0u32..198) {
        let cal = StudyCalendar::new(bpd, 198);
        let slot = cal.first_slot_of_day(DayIndex(day));
        prop_assert_eq!(cal.day_of_slot(slot), DayIndex(day));
    }

    #[test]
    fn day_iso_parses_back(day in 0u32..198) {
        let d = DayIndex(day);
        let (_, m, dom) = d.date();
        prop_assert_eq!(DayIndex::from_date(m, dom), Some(d));
    }

    #[test]
    fn gas_sum_saturates(values in proptest::collection::vec(any::<u64>(), 0..20)) {
        let total: Gas = values.iter().map(|&v| Gas(v)).sum();
        // Must not panic and must dominate each element or have saturated.
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(total.0 >= max || total.0 == u64::MAX);
    }

    #[test]
    fn keccak_is_collision_free_on_distinct_labels(a in "[a-z]{1,12}", b in "[a-z]{1,12}") {
        prop_assume!(a != b);
        prop_assert_ne!(H256::derive(&a), H256::derive(&b));
    }

    #[test]
    fn string_codec_round_trip(s in "\\PC{0,64}") {
        let owned = s.to_string();
        prop_assert_eq!(String::decoded(&owned.encoded()).unwrap(), owned);
    }

    #[test]
    fn vec_codec_round_trip(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(Vec::<u64>::decoded(&v.encoded()).unwrap(), v);
    }

    #[test]
    fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Decoding arbitrary bytes must return, never panic.
        let _ = Vec::<Wei>::decoded(&data);
        let _ = Address::decoded(&data);
        let _ = String::decoded(&data);
    }
}
