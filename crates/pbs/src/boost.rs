//! The validator side: MEV-Boost and the local-build fallback.
//!
//! "To receive bids from the relays, a validator must install the
//! MEV-Boost client and add the relays from which they wish to receive
//! bids to the config file" (§2.2). The client queries each subscribed
//! relay for its best header, picks the highest bid, signs blind, and
//! returns the signed header; if no relay offers a block (or the offered
//! block is rejected, as on 10 Nov 2022), the validator falls back to
//! building locally from its own mempool view — with the naive gas-price
//! ordering the paper attributes to proposers (§1).

use crate::builder::BuilderId;
use crate::relay::{RelayId, RelayRegistry};
use eth_types::{Gas, GasPrice, Transaction, Wei};
use execution::Mempool;
use simcore::SimTime;

/// A timed `getHeader` round: when the proposer's query hits the relays,
/// and how far a degraded stale relay's served view lags behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// The query instant (absolute simulated time).
    pub now: SimTime,
    /// Staleness lag for degraded relays, in milliseconds.
    pub staleness_lag_ms: u64,
}

/// The winning header as MEV-Boost sees it: who bid what, through which
/// relays.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderChoice {
    /// The promised value (the blinded header's bid).
    pub promised: Wei,
    /// The builder that produced it.
    pub builder: crate::builder::BuilderId,
    /// The submission pubkey.
    pub pubkey: eth_types::BlsPublicKey,
    /// All subscribed relays carrying this exact (builder, bid) pair — when
    /// more than one, the block is later claimed by each (the ~5% multi-
    /// relay blocks of §4.1).
    pub relays: Vec<RelayId>,
}

/// Bounded-retry policy for relay requests: a fixed attempt budget with
/// deterministic exponential backoff (no randomized jitter — the whole
/// simulation must stay a pure function of the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// `getHeader` attempts per relay before giving up on it.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `base_backoff_ms << (n - 1)`.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before the `attempt`-th retry (1-based).
    ///
    /// The doubling is capped at 2^16 and the multiply saturates: a `<<`
    /// on a large configured base would wrap in release (a tiny or zero
    /// backoff) and panic in debug. `u64::MAX` ms is already "forever"
    /// for a 12 s slot, so saturation is the right ceiling.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let doubling = 1u64 << attempt.saturating_sub(1).min(16);
        self.base_backoff_ms.saturating_mul(doubling)
    }
}

/// One observable decision the MEV-Boost client made during a slot. The
/// stream of events is the audit trail the fault analysis consumes; it is
/// empty whenever every relay behaves (so fault-free runs are unchanged).
#[derive(Debug, Clone, PartialEq)]
pub enum BoostEvent {
    /// A `getHeader` attempt timed out (attempt numbers are 1-based).
    HeaderTimeout {
        /// Queried relay.
        relay: RelayId,
        /// Which attempt timed out.
        attempt: u32,
        /// Deterministic backoff the client waited before retrying.
        backoff_ms: u64,
    },
    /// The retry budget for a relay was exhausted without a response.
    RelayUnreachable {
        /// The relay that never answered.
        relay: RelayId,
    },
    /// A degraded relay served a stale header (older than its best escrow).
    StaleHeader {
        /// The relay serving stale data.
        relay: RelayId,
    },
    /// The best header fell below `min-bid`; the client builds locally.
    BelowMinBid {
        /// The rejected header's value.
        promised: Wei,
    },
    /// The client signed a blinded header (at most one per slot).
    HeaderSigned {
        /// Relay whose header was signed (primary of the carrying set).
        relay: RelayId,
        /// Winning builder.
        builder: BuilderId,
        /// Promised value.
        promised: Wei,
    },
    /// `getPayload` failed on a relay carrying the signed header.
    PayloadFailed {
        /// The failing relay.
        relay: RelayId,
    },
    /// `getPayload` succeeded; the block can be published.
    PayloadDelivered {
        /// The delivering relay.
        relay: RelayId,
    },
    /// No header was signed; the validator built the block locally.
    SelfBuild,
    /// A header was signed but every carrying relay failed `getPayload`:
    /// the slot is missed (the 10 Nov 2022 timestamp-bug failure mode).
    SlotMissed {
        /// The relay whose header was signed.
        relay: RelayId,
    },
    /// The delivering relay paid less than promised by injected fault.
    ShortfallInjected {
        /// The under-paying relay.
        relay: RelayId,
        /// What the header promised.
        promised: Wei,
        /// What actually arrived.
        delivered: Wei,
    },
}

/// The outcome of one full MEV-Boost proposal round.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposeReport {
    /// The signed header, if any relay produced an acceptable one.
    pub choice: Option<HeaderChoice>,
    /// The relay that served `getPayload` (primary unless it failed and a
    /// fallback relay carrying the same header stepped in).
    pub payload_relay: Option<RelayId>,
    /// True when a header was signed but no carrying relay delivered the
    /// payload — the proposer can no longer build locally (it signed) and
    /// the slot is missed.
    pub missed: bool,
    /// Every decision taken, in order.
    pub events: Vec<BoostEvent>,
}

/// The validator-side relay client.
#[derive(Debug, Clone)]
pub struct MevBoostClient {
    /// Relays in the validator's config file.
    pub subscribed: Vec<RelayId>,
    /// The `min-bid` flag: headers below this value are ignored and the
    /// validator builds locally instead (introduced by MEV-Boost after the
    /// censorship debate; 0 during the study period).
    pub min_bid: Wei,
    /// Per-relay request retry policy.
    pub retry: RetryPolicy,
}

impl MevBoostClient {
    /// Creates a client subscribed to the given relays, with no min-bid.
    pub fn new(subscribed: Vec<RelayId>) -> Self {
        MevBoostClient {
            subscribed,
            min_bid: Wei::ZERO,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the `min-bid` threshold.
    pub fn with_min_bid(mut self, min_bid: Wei) -> Self {
        self.min_bid = min_bid;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Queries every subscribed relay and returns the most profitable
    /// header, or `None` when no relay holds a block. Ignores injected
    /// faults — this is the instantaneous best-escrow view; use
    /// [`MevBoostClient::propose`] for the full fault-aware round.
    pub fn best_header(&self, relays: &RelayRegistry) -> Option<HeaderChoice> {
        let mut best: Option<HeaderChoice> = None;
        for &rid in &self.subscribed {
            let Some(relay) = relays.get(rid) else {
                continue;
            };
            if let Some(bid) = relay.best_bid() {
                merge_header(&mut best, rid, &bid.submission);
            }
        }
        // min-bid: prefer local building over cheap relay blocks.
        best.filter(|b| b.promised >= self.min_bid)
    }

    /// Runs one full proposal round against the registry, honoring each
    /// relay's injected fault state:
    ///
    /// 1. **getHeader with bounded retry** — relays are queried in
    ///    subscription order (the deterministic fallback order); each
    ///    timeout burns one attempt and a deterministic backoff, and a
    ///    relay that exhausts the budget is skipped.
    /// 2. **Selection** — the highest bid wins (ties on the same
    ///    builder/pubkey accrue extra carrying relays, the multi-relay
    ///    blocks of §4.1); `min-bid` can still veto it.
    /// 3. **Signing** — at most one header is signed per slot.
    /// 4. **getPayload with multi-relay fallback** — the carrying relays
    ///    are tried in order; if all fail, the slot is missed (the client
    ///    cannot fall back to a local build after signing).
    ///
    /// When no header is signed the caller must self-build; `events` then
    /// ends with [`BoostEvent::SelfBuild`].
    ///
    /// With every relay healthy this is byte-equivalent to
    /// [`MevBoostClient::best_header`] plus a successful payload fetch
    /// from the primary relay.
    pub fn propose(&self, relays: &RelayRegistry) -> ProposeReport {
        let report = self.propose_inner(relays, None);
        if simcore::telemetry::enabled() {
            record_boost_telemetry(&report, relays);
        }
        report
    }

    /// [`MevBoostClient::propose`] against the relays' timed bid books:
    /// every `getHeader` is answered from the relay's view *as of the
    /// query instant* (degraded stale relays serve the view as of
    /// `now - staleness_lag`), so faults now interact with sub-slot time.
    pub fn propose_timed(&self, relays: &RelayRegistry, query: TimedQuery) -> ProposeReport {
        let report = self.propose_inner(relays, Some(query));
        if simcore::telemetry::enabled() {
            record_boost_telemetry(&report, relays);
        }
        report
    }

    fn propose_inner(&self, relays: &RelayRegistry, timed: Option<TimedQuery>) -> ProposeReport {
        let mut events = Vec::new();
        let mut best: Option<HeaderChoice> = None;
        for &rid in &self.subscribed {
            let Some(relay) = relays.get(rid) else {
                continue;
            };
            let wasted = relay.faults.wasted_attempts;
            if wasted > 0 {
                let answered_on = wasted.saturating_add(1);
                for attempt in 1..=self.retry.max_attempts.min(wasted) {
                    events.push(BoostEvent::HeaderTimeout {
                        relay: rid,
                        attempt,
                        backoff_ms: self.retry.backoff_ms(attempt),
                    });
                }
                if answered_on > self.retry.max_attempts {
                    events.push(BoostEvent::RelayUnreachable { relay: rid });
                    continue;
                }
            }
            // Timed rounds read the bid book at the query instant; the
            // one-shot path reads the flat escrow. The stale event fires
            // when the served view differs from the relay's own fresh
            // view at the same instant.
            let (served, fresh) = match timed {
                Some(q) => (
                    relay.serve_header_at(q.now, q.staleness_lag_ms),
                    relay.book_view_at(q.now),
                ),
                None => (relay.serve_header(), relay.best_bid()),
            };
            if relay.faults.stale_response
                && served.map(|b| b.submission.declared_bid)
                    != fresh.map(|b| b.submission.declared_bid)
            {
                events.push(BoostEvent::StaleHeader { relay: rid });
            }
            if let Some(bid) = served {
                merge_header(&mut best, rid, &bid.submission);
            }
        }
        if let Some(b) = &best {
            if b.promised < self.min_bid {
                events.push(BoostEvent::BelowMinBid {
                    promised: b.promised,
                });
                best = None;
            }
        }
        let Some(choice) = best else {
            events.push(BoostEvent::SelfBuild);
            return ProposeReport {
                choice: None,
                payload_relay: None,
                missed: false,
                events,
            };
        };
        let primary = choice.relays[0];
        events.push(BoostEvent::HeaderSigned {
            relay: primary,
            builder: choice.builder,
            promised: choice.promised,
        });
        let mut payload_relay = None;
        for &rid in &choice.relays {
            let fails = relays
                .get(rid)
                .map(|r| r.faults.payload_failure)
                .unwrap_or(true);
            if fails {
                events.push(BoostEvent::PayloadFailed { relay: rid });
            } else {
                events.push(BoostEvent::PayloadDelivered { relay: rid });
                payload_relay = Some(rid);
                break;
            }
        }
        let missed = payload_relay.is_none();
        if missed {
            events.push(BoostEvent::SlotMissed { relay: primary });
        }
        ProposeReport {
            choice: Some(choice),
            payload_relay,
            missed,
            events,
        }
    }
}

/// Translates one proposal round's event trail into telemetry counters:
/// a per-kind total plus a per-relay labeled series for every relay-
/// attributed event. Deterministic (counts simulated events only).
fn record_boost_telemetry(report: &ProposeReport, relays: &RelayRegistry) {
    use simcore::telemetry;
    let relay_name = |rid: RelayId| relays.get(rid).map(|r| r.info.name).unwrap_or("unknown");
    let labeled = |metric: &str, rid: RelayId| {
        telemetry::counter_add(metric, 1);
        telemetry::counter_add(&format!("{metric}{{relay=\"{}\"}}", relay_name(rid)), 1);
    };
    for event in &report.events {
        match *event {
            BoostEvent::HeaderTimeout { relay, .. } => {
                labeled("pbs.boost.header_timeouts", relay);
                telemetry::counter_add("pbs.boost.retries", 1);
            }
            BoostEvent::RelayUnreachable { relay } => labeled("pbs.boost.unreachable", relay),
            BoostEvent::StaleHeader { relay } => labeled("pbs.boost.stale_headers", relay),
            BoostEvent::BelowMinBid { .. } => telemetry::counter_add("pbs.boost.below_min_bid", 1),
            BoostEvent::HeaderSigned { relay, .. } => labeled("pbs.boost.headers_signed", relay),
            BoostEvent::PayloadFailed { relay } => labeled("pbs.boost.payload_failures", relay),
            BoostEvent::PayloadDelivered { relay } => {
                labeled("pbs.boost.payloads_delivered", relay)
            }
            BoostEvent::SelfBuild => telemetry::counter_add("pbs.boost.self_builds", 1),
            BoostEvent::SlotMissed { relay } => labeled("pbs.boost.missed_slots", relay),
            BoostEvent::ShortfallInjected { relay, .. } => labeled("pbs.boost.shortfalls", relay),
        }
    }
    // A delivery by a non-primary carrying relay is a successful fallback.
    if let (Some(choice), Some(delivering)) = (&report.choice, report.payload_relay) {
        if delivering != choice.relays[0] {
            telemetry::counter_add("pbs.boost.payload_fallbacks", 1);
        }
    }
}

/// The bid-merge rule shared by `best_header` and `propose`: strictly
/// higher bids replace; equal bids from the same (builder, pubkey) accrue
/// an extra carrying relay.
fn merge_header(best: &mut Option<HeaderChoice>, rid: RelayId, s: &crate::relay::Submission) {
    match best {
        None => {
            *best = Some(HeaderChoice {
                promised: s.declared_bid,
                builder: s.builder,
                pubkey: s.pubkey,
                relays: vec![rid],
            });
        }
        Some(cur) => {
            if s.declared_bid > cur.promised {
                *cur = HeaderChoice {
                    promised: s.declared_bid,
                    builder: s.builder,
                    pubkey: s.pubkey,
                    relays: vec![rid],
                };
            } else if s.declared_bid == cur.promised
                && s.builder == cur.builder
                && s.pubkey == cur.pubkey
            {
                cur.relays.push(rid);
            }
        }
    }
}

/// The non-PBS path: local block building with naive gas-price ordering.
#[derive(Debug, Clone)]
pub struct LocalBuilder {
    /// Block gas limit.
    pub gas_limit: Gas,
}

impl Default for LocalBuilder {
    fn default() -> Self {
        LocalBuilder {
            gas_limit: Gas::BLOCK_LIMIT,
        }
    }
}

impl LocalBuilder {
    /// Builds from the proposer's own mempool view, ordering by gas price
    /// (ignoring coinbase bribes it has no tooling to see), plus any
    /// private transactions delivered directly to this proposer.
    pub fn build(
        &self,
        mempool: &Mempool,
        direct: &[Transaction],
        base_fee: GasPrice,
    ) -> (Vec<Transaction>, Wei) {
        let mut txs = mempool.select_gas_price_ordered(base_fee, self.gas_limit);
        let mut gas: Gas = txs.iter().map(|t| t.gas_used()).sum();
        for t in direct {
            if t.includable_at(base_fee) && gas.0 + t.gas_used().0 <= self.gas_limit.0 {
                gas += t.gas_used();
                txs.push(t.clone());
            }
        }
        let value = txs.iter().map(|t| t.producer_value(base_fee)).sum();
        (txs, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuilderId;
    use crate::relay::{RelayRegistry, Submission};
    use eth_types::{Address, BlsPublicKey, DayIndex, Slot, TxEffect};
    use simcore::SeedDomain;

    fn submission(bid_eth: f64, builder: u32, key: &str) -> Submission {
        Submission {
            slot: Slot(1),
            builder: BuilderId(builder),
            pubkey: BlsPublicKey::derive(key),
            declared_bid: Wei::from_eth(bid_eth),
            true_bid: Wei::from_eth(bid_eth),
            sandwich_count: 0,
            flagged_by_blacklist: false,
        }
    }

    #[test]
    fn picks_highest_bid_across_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.05, 1, "k1"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.promised, Wei::from_eth(0.09));
        assert_eq!(choice.builder, BuilderId(2));
        assert_eq!(choice.relays, vec![u]);
    }

    #[test]
    fn identical_bids_from_same_builder_claim_multiple_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.relays.len(), 2);
    }

    #[test]
    fn min_bid_filters_cheap_headers() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.01, 2, "k2"), DayIndex(0));
        let client = MevBoostClient::new(vec![u]).with_min_bid(Wei::from_eth(0.05));
        assert!(client.best_header(&relays).is_none(), "0.01 < min-bid 0.05");
        let eager = MevBoostClient::new(vec![u]);
        assert!(eager.best_header(&relays).is_some());
    }

    #[test]
    fn unsubscribed_relays_are_invisible() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a]);
        assert!(client.best_header(&relays).is_none());
    }

    fn two_relay_setup() -> (RelayRegistry, RelayId, RelayId) {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.05, 1, "k1"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));
        (relays, a, u)
    }

    #[test]
    fn healthy_propose_matches_best_header() {
        let (relays, a, u) = two_relay_setup();
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert_eq!(report.choice, client.best_header(&relays));
        assert_eq!(report.payload_relay, Some(u));
        assert!(!report.missed);
        assert_eq!(
            report.events,
            vec![
                BoostEvent::HeaderSigned {
                    relay: u,
                    builder: BuilderId(2),
                    promised: Wei::from_eth(0.09),
                },
                BoostEvent::PayloadDelivered { relay: u },
            ]
        );
    }

    #[test]
    fn backoff_saturates_at_extreme_attempts_and_bases() {
        let p = RetryPolicy::default();
        // The documented doubling schedule is unchanged in-range.
        assert_eq!(p.backoff_ms(1), 50);
        assert_eq!(p.backoff_ms(2), 100);
        assert_eq!(p.backoff_ms(3), 200);
        // Attempt numbers beyond the shift cap stop doubling…
        assert_eq!(p.backoff_ms(17), 50 << 16);
        assert_eq!(p.backoff_ms(u32::MAX), 50 << 16);
        // …and large bases saturate instead of wrapping to ~zero.
        let huge = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: u64::MAX / 2,
        };
        assert_eq!(huge.backoff_ms(1), u64::MAX / 2);
        assert_eq!(huge.backoff_ms(2), u64::MAX - 1);
        assert_eq!(huge.backoff_ms(3), u64::MAX);
        assert_eq!(huge.backoff_ms(u32::MAX), u64::MAX);
        let max = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: u64::MAX,
        };
        assert_eq!(max.backoff_ms(1), u64::MAX);
        assert_eq!(max.backoff_ms(u32::MAX), u64::MAX);
    }

    #[test]
    fn unreachable_relay_falls_back_to_next() {
        let (mut relays, a, u) = two_relay_setup();
        let best = relays.get_mut(u).unwrap();
        best.faults.health = simcore::Health::Degraded;
        best.faults.wasted_attempts = u32::MAX;
        let client = MevBoostClient::new(vec![u, a]);
        let report = client.propose(&relays);
        // Three timeouts with doubling backoff, then give up on `u`.
        assert_eq!(
            &report.events[..4],
            &[
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 1,
                    backoff_ms: 50,
                },
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 2,
                    backoff_ms: 100,
                },
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 3,
                    backoff_ms: 200,
                },
                BoostEvent::RelayUnreachable { relay: u },
            ]
        );
        let choice = report.choice.expect("fallback relay still answers");
        assert_eq!(choice.relays, vec![a]);
        assert_eq!(choice.promised, Wei::from_eth(0.05));
        assert_eq!(report.payload_relay, Some(a));
    }

    #[test]
    fn timeouts_within_budget_still_reach_the_relay() {
        let (mut relays, a, u) = two_relay_setup();
        relays.get_mut(u).unwrap().faults.health = simcore::Health::Degraded;
        relays.get_mut(u).unwrap().faults.wasted_attempts = 2;
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| matches!(e, BoostEvent::HeaderTimeout { .. }))
                .count(),
            2
        );
        assert_eq!(report.choice.unwrap().relays, vec![u]);
    }

    #[test]
    fn stale_relay_serves_previous_best() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        let relay = relays.get_mut(u).unwrap();
        relay.consider(submission(0.05, 1, "k1"), DayIndex(0));
        relay.consider(submission(0.09, 2, "k2"), DayIndex(0));
        relay.faults.health = simcore::Health::Degraded;
        relay.faults.stale_response = true;
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert!(report
            .events
            .contains(&BoostEvent::StaleHeader { relay: u }));
        // The stale view misses the late 0.09 bid.
        assert_eq!(report.choice.unwrap().promised, Wei::from_eth(0.05));
    }

    #[test]
    fn payload_failure_on_sole_relay_misses_the_slot() {
        let (mut relays, a, u) = two_relay_setup();
        let _ = a;
        relays.get_mut(u).unwrap().faults.payload_failure = true;
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert!(report.missed);
        assert_eq!(report.payload_relay, None);
        assert_eq!(
            &report.events[1..],
            &[
                BoostEvent::PayloadFailed { relay: u },
                BoostEvent::SlotMissed { relay: u },
            ]
        );
    }

    #[test]
    fn payload_fallback_uses_secondary_carrying_relay() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        for r in [a, u] {
            relays
                .get_mut(r)
                .unwrap()
                .consider(submission(0.09, 2, "k2"), DayIndex(0));
        }
        relays.get_mut(a).unwrap().faults.payload_failure = true;
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert!(!report.missed);
        assert_eq!(report.payload_relay, Some(u));
        assert!(report
            .events
            .contains(&BoostEvent::PayloadFailed { relay: a }));
    }

    #[test]
    fn no_acceptable_header_yields_self_build() {
        let relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert_eq!(report.choice, None);
        assert!(!report.missed);
        assert_eq!(report.events, vec![BoostEvent::SelfBuild]);
    }

    #[test]
    fn local_builder_uses_gas_price_not_bribes() {
        let mut mempool = Mempool::new(64);
        let mut briber = Transaction::transfer(
            Address::derive("briber"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(0.1),
            GasPrice::from_gwei(100.0),
        );
        briber.coinbase_tip = Wei::from_eth(1.0);
        mempool.insert(briber.finalize());
        let tipper = Transaction::transfer(
            Address::derive("tipper"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(30.0),
            GasPrice::from_gwei(100.0),
        );
        mempool.insert(tipper.clone());

        let (txs, _) = LocalBuilder {
            gas_limit: Gas(21_000),
        }
        .build(&mempool, &[], GasPrice::from_gwei(5.0));
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, tipper.hash);
    }

    #[test]
    fn local_builder_includes_direct_private_flow() {
        let mempool = Mempool::new(64);
        let direct = Transaction::transfer(
            Address::derive("binance"),
            Address::derive("hot-wallet"),
            Wei::from_eth(100.0),
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        let (txs, value) = LocalBuilder::default().build(
            &mempool,
            std::slice::from_ref(&direct),
            GasPrice::from_gwei(1.0),
        );
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, direct.hash);
        assert_eq!(value, direct.producer_value(GasPrice::from_gwei(1.0)));
    }

    #[test]
    fn local_builder_respects_gas_limit_for_direct_txs() {
        let mempool = Mempool::new(4);
        let mut big = Transaction::transfer(
            Address::derive("big"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        big.effect = TxEffect::Generic {
            extra_gas: 40_000_000,
        };
        let (txs, _) =
            LocalBuilder::default().build(&mempool, &[big.finalize()], GasPrice::from_gwei(1.0));
        assert!(txs.is_empty());
    }
}
