//! The validator side: MEV-Boost and the local-build fallback.
//!
//! "To receive bids from the relays, a validator must install the
//! MEV-Boost client and add the relays from which they wish to receive
//! bids to the config file" (§2.2). The client queries each subscribed
//! relay for its best header, picks the highest bid, signs blind, and
//! returns the signed header; if no relay offers a block (or the offered
//! block is rejected, as on 10 Nov 2022), the validator falls back to
//! building locally from its own mempool view — with the naive gas-price
//! ordering the paper attributes to proposers (§1).

use crate::relay::{RelayId, RelayRegistry};
use eth_types::{Gas, GasPrice, Transaction, Wei};
use execution::Mempool;

/// The winning header as MEV-Boost sees it: who bid what, through which
/// relays.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderChoice {
    /// The promised value (the blinded header's bid).
    pub promised: Wei,
    /// The builder that produced it.
    pub builder: crate::builder::BuilderId,
    /// The submission pubkey.
    pub pubkey: eth_types::BlsPublicKey,
    /// All subscribed relays carrying this exact (builder, bid) pair — when
    /// more than one, the block is later claimed by each (the ~5% multi-
    /// relay blocks of §4.1).
    pub relays: Vec<RelayId>,
}

/// The validator-side relay client.
#[derive(Debug, Clone)]
pub struct MevBoostClient {
    /// Relays in the validator's config file.
    pub subscribed: Vec<RelayId>,
    /// The `min-bid` flag: headers below this value are ignored and the
    /// validator builds locally instead (introduced by MEV-Boost after the
    /// censorship debate; 0 during the study period).
    pub min_bid: Wei,
}

impl MevBoostClient {
    /// Creates a client subscribed to the given relays, with no min-bid.
    pub fn new(subscribed: Vec<RelayId>) -> Self {
        MevBoostClient {
            subscribed,
            min_bid: Wei::ZERO,
        }
    }

    /// Sets the `min-bid` threshold.
    pub fn with_min_bid(mut self, min_bid: Wei) -> Self {
        self.min_bid = min_bid;
        self
    }

    /// Queries every subscribed relay and returns the most profitable
    /// header, or `None` when no relay holds a block.
    pub fn best_header(&self, relays: &RelayRegistry) -> Option<HeaderChoice> {
        let mut best: Option<HeaderChoice> = None;
        for &rid in &self.subscribed {
            let relay = relays.get(rid);
            let Some(bid) = relay.best_bid() else {
                continue;
            };
            let s = &bid.submission;
            match &mut best {
                None => {
                    best = Some(HeaderChoice {
                        promised: s.declared_bid,
                        builder: s.builder,
                        pubkey: s.pubkey,
                        relays: vec![rid],
                    });
                }
                Some(cur) => {
                    if s.declared_bid > cur.promised {
                        *cur = HeaderChoice {
                            promised: s.declared_bid,
                            builder: s.builder,
                            pubkey: s.pubkey,
                            relays: vec![rid],
                        };
                    } else if s.declared_bid == cur.promised
                        && s.builder == cur.builder
                        && s.pubkey == cur.pubkey
                    {
                        cur.relays.push(rid);
                    }
                }
            }
        }
        // min-bid: prefer local building over cheap relay blocks.
        best.filter(|b| b.promised >= self.min_bid)
    }
}

/// The non-PBS path: local block building with naive gas-price ordering.
#[derive(Debug, Clone)]
pub struct LocalBuilder {
    /// Block gas limit.
    pub gas_limit: Gas,
}

impl Default for LocalBuilder {
    fn default() -> Self {
        LocalBuilder {
            gas_limit: Gas::BLOCK_LIMIT,
        }
    }
}

impl LocalBuilder {
    /// Builds from the proposer's own mempool view, ordering by gas price
    /// (ignoring coinbase bribes it has no tooling to see), plus any
    /// private transactions delivered directly to this proposer.
    pub fn build(
        &self,
        mempool: &Mempool,
        direct: &[Transaction],
        base_fee: GasPrice,
    ) -> (Vec<Transaction>, Wei) {
        let mut txs = mempool.select_gas_price_ordered(base_fee, self.gas_limit);
        let mut gas: Gas = txs.iter().map(|t| t.gas_used()).sum();
        for t in direct {
            if t.includable_at(base_fee) && gas.0 + t.gas_used().0 <= self.gas_limit.0 {
                gas += t.gas_used();
                txs.push(t.clone());
            }
        }
        let value = txs.iter().map(|t| t.producer_value(base_fee)).sum();
        (txs, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuilderId;
    use crate::relay::{RelayRegistry, Submission};
    use eth_types::{Address, BlsPublicKey, DayIndex, Slot, TxEffect};
    use simcore::SeedDomain;

    fn submission(bid_eth: f64, builder: u32, key: &str) -> Submission {
        Submission {
            slot: Slot(1),
            builder: BuilderId(builder),
            pubkey: BlsPublicKey::derive(key),
            declared_bid: Wei::from_eth(bid_eth),
            true_bid: Wei::from_eth(bid_eth),
            sandwich_count: 0,
            flagged_by_blacklist: false,
        }
    }

    #[test]
    fn picks_highest_bid_across_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .consider(submission(0.05, 1, "k1"), DayIndex(0));
        relays
            .get_mut(u)
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.promised, Wei::from_eth(0.09));
        assert_eq!(choice.builder, BuilderId(2));
        assert_eq!(choice.relays, vec![u]);
    }

    #[test]
    fn identical_bids_from_same_builder_claim_multiple_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .consider(submission(0.09, 2, "k2"), DayIndex(0));
        relays
            .get_mut(u)
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.relays.len(), 2);
    }

    #[test]
    fn min_bid_filters_cheap_headers() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .consider(submission(0.01, 2, "k2"), DayIndex(0));
        let client = MevBoostClient::new(vec![u]).with_min_bid(Wei::from_eth(0.05));
        assert!(client.best_header(&relays).is_none(), "0.01 < min-bid 0.05");
        let eager = MevBoostClient::new(vec![u]);
        assert!(eager.best_header(&relays).is_some());
    }

    #[test]
    fn unsubscribed_relays_are_invisible() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a]);
        assert!(client.best_header(&relays).is_none());
    }

    #[test]
    fn local_builder_uses_gas_price_not_bribes() {
        let mut mempool = Mempool::new(64);
        let mut briber = Transaction::transfer(
            Address::derive("briber"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(0.1),
            GasPrice::from_gwei(100.0),
        );
        briber.coinbase_tip = Wei::from_eth(1.0);
        mempool.insert(briber.finalize());
        let tipper = Transaction::transfer(
            Address::derive("tipper"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(30.0),
            GasPrice::from_gwei(100.0),
        );
        mempool.insert(tipper.clone());

        let (txs, _) = LocalBuilder {
            gas_limit: Gas(21_000),
        }
        .build(&mempool, &[], GasPrice::from_gwei(5.0));
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, tipper.hash);
    }

    #[test]
    fn local_builder_includes_direct_private_flow() {
        let mempool = Mempool::new(64);
        let direct = Transaction::transfer(
            Address::derive("binance"),
            Address::derive("hot-wallet"),
            Wei::from_eth(100.0),
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        let (txs, value) = LocalBuilder::default().build(
            &mempool,
            std::slice::from_ref(&direct),
            GasPrice::from_gwei(1.0),
        );
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, direct.hash);
        assert_eq!(value, direct.producer_value(GasPrice::from_gwei(1.0)));
    }

    #[test]
    fn local_builder_respects_gas_limit_for_direct_txs() {
        let mempool = Mempool::new(4);
        let mut big = Transaction::transfer(
            Address::derive("big"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        big.effect = TxEffect::Generic {
            extra_gas: 40_000_000,
        };
        let (txs, _) =
            LocalBuilder::default().build(&mempool, &[big.finalize()], GasPrice::from_gwei(1.0));
        assert!(txs.is_empty());
    }
}
