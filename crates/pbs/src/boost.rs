//! The validator side: MEV-Boost and the local-build fallback.
//!
//! "To receive bids from the relays, a validator must install the
//! MEV-Boost client and add the relays from which they wish to receive
//! bids to the config file" (§2.2). The client queries each subscribed
//! relay for its best header, picks the highest bid, signs blind, and
//! returns the signed header; if no relay offers a block (or the offered
//! block is rejected, as on 10 Nov 2022), the validator falls back to
//! building locally from its own mempool view — with the naive gas-price
//! ordering the paper attributes to proposers (§1).

use crate::builder::BuilderId;
use crate::relay::{RelayId, RelayRegistry};
use eth_types::{Gas, GasPrice, Transaction, Wei};
use execution::Mempool;
use serde::{Deserialize, Serialize};
use simcore::{SimTime, SnapReader, SnapWriter, Snapshot, SnapshotError};

/// A timed `getHeader` round: when the proposer's query hits the relays,
/// and how far a degraded stale relay's served view lags behind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedQuery {
    /// The query instant (absolute simulated time).
    pub now: SimTime,
    /// Staleness lag for degraded relays, in milliseconds.
    pub staleness_lag_ms: u64,
}

/// The winning header as MEV-Boost sees it: who bid what, through which
/// relays.
#[derive(Debug, Clone, PartialEq)]
pub struct HeaderChoice {
    /// The promised value (the blinded header's bid).
    pub promised: Wei,
    /// The builder that produced it.
    pub builder: crate::builder::BuilderId,
    /// The submission pubkey.
    pub pubkey: eth_types::BlsPublicKey,
    /// All subscribed relays carrying this exact (builder, bid) pair — when
    /// more than one, the block is later claimed by each (the ~5% multi-
    /// relay blocks of §4.1).
    pub relays: Vec<RelayId>,
}

/// Bounded-retry policy for relay requests: a fixed attempt budget with
/// deterministic exponential backoff (no randomized jitter — the whole
/// simulation must stay a pure function of the seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// `getHeader` attempts per relay before giving up on it.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `base_backoff_ms << (n - 1)`.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before the `attempt`-th retry (1-based).
    ///
    /// The doubling is capped at 2^16 and the multiply saturates: a `<<`
    /// on a large configured base would wrap in release (a tiny or zero
    /// backoff) and panic in debug. `u64::MAX` ms is already "forever"
    /// for a 12 s slot, so saturation is the right ceiling.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let doubling = 1u64 << attempt.saturating_sub(1).min(16);
        self.base_backoff_ms.saturating_mul(doubling)
    }
}

/// One observable decision the MEV-Boost client made during a slot. The
/// stream of events is the audit trail the fault analysis consumes; it is
/// empty whenever every relay behaves (so fault-free runs are unchanged).
#[derive(Debug, Clone, PartialEq)]
pub enum BoostEvent {
    /// A `getHeader` attempt timed out (attempt numbers are 1-based).
    HeaderTimeout {
        /// Queried relay.
        relay: RelayId,
        /// Which attempt timed out.
        attempt: u32,
        /// Deterministic backoff the client waited before retrying.
        backoff_ms: u64,
    },
    /// The retry budget for a relay was exhausted without a response.
    RelayUnreachable {
        /// The relay that never answered.
        relay: RelayId,
    },
    /// A degraded relay served a stale header (older than its best escrow).
    StaleHeader {
        /// The relay serving stale data.
        relay: RelayId,
    },
    /// The best header fell below `min-bid`; the client builds locally.
    BelowMinBid {
        /// The rejected header's value.
        promised: Wei,
    },
    /// The client signed a blinded header (at most one per slot).
    HeaderSigned {
        /// Relay whose header was signed (primary of the carrying set).
        relay: RelayId,
        /// Winning builder.
        builder: BuilderId,
        /// Promised value.
        promised: Wei,
    },
    /// `getPayload` failed on a relay carrying the signed header.
    PayloadFailed {
        /// The failing relay.
        relay: RelayId,
    },
    /// `getPayload` succeeded; the block can be published.
    PayloadDelivered {
        /// The delivering relay.
        relay: RelayId,
    },
    /// No header was signed; the validator built the block locally.
    SelfBuild,
    /// A header was signed but every carrying relay failed `getPayload`:
    /// the slot is missed (the 10 Nov 2022 timestamp-bug failure mode).
    SlotMissed {
        /// The relay whose header was signed.
        relay: RelayId,
    },
    /// The delivering relay paid less than promised by injected fault.
    ShortfallInjected {
        /// The under-paying relay.
        relay: RelayId,
        /// What the header promised.
        promised: Wei,
        /// What actually arrived.
        delivered: Wei,
    },
    /// The per-slot deadline budget ran out before this relay could be
    /// queried; it and every relay after it were skipped.
    BudgetExhausted {
        /// The first relay the client could no longer afford to query.
        relay: RelayId,
    },
    /// The winning builder was insolvent: its payment at `getPayload`
    /// fell short of the promised bid. Attributed to the builder — the
    /// relay faithfully forwarded what it was given.
    BuilderShortfall {
        /// The insolvent builder.
        builder: BuilderId,
        /// What the header promised.
        promised: Wei,
        /// What actually arrived.
        delivered: Wei,
    },
}

/// Per-slot wall-clock budget for the getHeader/getPayload sequence.
/// Every relay query costs `query_cost_ms` of simulated time and every
/// retry backoff is waited out; once `budget_ms` is spent, remaining
/// relays are skipped instead of retried into a missed slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBudget {
    /// Total simulated milliseconds available for relay traffic.
    pub budget_ms: u64,
    /// Cost of a single getHeader/getPayload round trip, in ms.
    pub query_cost_ms: u64,
}

/// A circuit-breaker state, per relay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: the relay is queried normally.
    Closed,
    /// Tripped: the relay is skipped until its cooldown expires.
    Open,
    /// Cooldown expired: the relay is probed; one more failure re-opens
    /// it, enough successes close it.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for CSV artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

impl Snapshot for BreakerState {
    fn encode(&self, w: &mut SnapWriter) {
        (match self {
            BreakerState::Closed => 0u8,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        })
        .encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::decode(r)? {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            t => return Err(SnapshotError::Corrupt(format!("BreakerState tag {t:#x}"))),
        })
    }
}

/// Thresholds driving the per-relay breaker state machine. Entirely
/// deterministic: transitions are a pure function of the `BoostEvent`
/// trail, no randomness involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failed slots that trip a Closed breaker Open.
    pub trip_failures: u32,
    /// Slots an Open breaker waits before allowing a HalfOpen probe.
    pub open_slots: u64,
    /// Consecutive successful probes that close a HalfOpen breaker.
    pub probe_successes: u32,
}

impl Snapshot for BreakerPolicy {
    fn encode(&self, w: &mut SnapWriter) {
        self.trip_failures.encode(w);
        self.open_slots.encode(w);
        self.probe_successes.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BreakerPolicy {
            trip_failures: Snapshot::decode(r)?,
            open_slots: Snapshot::decode(r)?,
            probe_successes: Snapshot::decode(r)?,
        })
    }
}

/// One breaker state change, for the resilience audit trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerTransition {
    /// Slot at which the transition happened.
    pub slot: u64,
    /// The relay whose breaker moved.
    pub relay: RelayId,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
}

impl Snapshot for BreakerTransition {
    fn encode(&self, w: &mut SnapWriter) {
        self.slot.encode(w);
        self.relay.encode(w);
        self.from.encode(w);
        self.to.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BreakerTransition {
            slot: Snapshot::decode(r)?,
            relay: Snapshot::decode(r)?,
            from: Snapshot::decode(r)?,
            to: Snapshot::decode(r)?,
        })
    }
}

/// One relay's breaker bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RelayBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
    probe_ok: u32,
}

impl Default for RelayBreaker {
    fn default() -> Self {
        RelayBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
            probe_ok: 0,
        }
    }
}

impl Snapshot for RelayBreaker {
    fn encode(&self, w: &mut SnapWriter) {
        self.state.encode(w);
        self.consecutive_failures.encode(w);
        self.opened_at.encode(w);
        self.probe_ok.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RelayBreaker {
            state: Snapshot::decode(r)?,
            consecutive_failures: Snapshot::decode(r)?,
            opened_at: Snapshot::decode(r)?,
            probe_ok: Snapshot::decode(r)?,
        })
    }
}

/// Per-relay circuit breakers for the MEV-Boost client, the defense the
/// real sidecar grew after relay incidents turned retries into missed
/// slots. Feed it each slot's [`BoostEvent`] trail; it decides which
/// relays the next slot may query.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    states: Vec<RelayBreaker>,
    transitions: Vec<BreakerTransition>,
}

impl BreakerBank {
    /// A bank of `relays` breakers, all Closed.
    pub fn new(policy: BreakerPolicy, relays: usize) -> Self {
        BreakerBank {
            policy,
            states: vec![RelayBreaker::default(); relays],
            transitions: Vec::new(),
        }
    }

    fn slot_mut(&mut self, r: RelayId) -> &mut RelayBreaker {
        let idx = r.0 as usize;
        if idx >= self.states.len() {
            self.states.resize(idx + 1, RelayBreaker::default());
        }
        &mut self.states[idx]
    }

    /// The current state of relay `r`'s breaker.
    pub fn state(&self, r: RelayId) -> BreakerState {
        self.states
            .get(r.0 as usize)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    fn transition(&mut self, slot: u64, relay: RelayId, to: BreakerState) {
        let b = self.slot_mut(relay);
        let from = b.state;
        if from == to {
            return;
        }
        b.state = to;
        self.transitions.push(BreakerTransition {
            slot,
            relay,
            from,
            to,
        });
    }

    /// Splits `subscribed` into the relays the client may query this slot
    /// and the relays skipped by an Open breaker. Open breakers whose
    /// cooldown has expired move to HalfOpen (and are admitted as
    /// probes).
    pub fn admit(&mut self, slot: u64, subscribed: &[RelayId]) -> (Vec<RelayId>, Vec<RelayId>) {
        let mut admitted = Vec::with_capacity(subscribed.len());
        let mut skipped = Vec::new();
        for &rid in subscribed {
            let b = *self.slot_mut(rid);
            match b.state {
                BreakerState::Open
                    if slot >= b.opened_at.saturating_add(self.policy.open_slots) =>
                {
                    self.slot_mut(rid).probe_ok = 0;
                    self.transition(slot, rid, BreakerState::HalfOpen);
                    admitted.push(rid);
                }
                BreakerState::Open => skipped.push(rid),
                BreakerState::Closed | BreakerState::HalfOpen => admitted.push(rid),
            }
        }
        (admitted, skipped)
    }

    /// Scores one slot's event trail: each admitted relay either failed
    /// (a failure-class event names it) or behaved. Failures accumulate
    /// toward a trip; successes reset Closed counters and advance
    /// HalfOpen probes toward re-closing.
    pub fn observe(&mut self, slot: u64, admitted: &[RelayId], events: &[BoostEvent]) {
        for &rid in admitted {
            let failed = events.iter().any(|e| {
                matches!(
                    e,
                    BoostEvent::RelayUnreachable { relay }
                        | BoostEvent::StaleHeader { relay }
                        | BoostEvent::PayloadFailed { relay }
                        | BoostEvent::ShortfallInjected { relay, .. }
                    if *relay == rid
                )
            });
            let policy = self.policy;
            let b = self.slot_mut(rid);
            match (b.state, failed) {
                (BreakerState::Closed, true) => {
                    b.consecutive_failures += 1;
                    if b.consecutive_failures >= policy.trip_failures {
                        self.slot_mut(rid).opened_at = slot;
                        self.transition(slot, rid, BreakerState::Open);
                    }
                }
                (BreakerState::Closed, false) => b.consecutive_failures = 0,
                (BreakerState::HalfOpen, true) => {
                    b.opened_at = slot;
                    b.probe_ok = 0;
                    self.transition(slot, rid, BreakerState::Open);
                }
                (BreakerState::HalfOpen, false) => {
                    b.probe_ok += 1;
                    if b.probe_ok >= policy.probe_successes {
                        let s = self.slot_mut(rid);
                        s.consecutive_failures = 0;
                        s.probe_ok = 0;
                        self.transition(slot, rid, BreakerState::Closed);
                    }
                }
                // Open relays were not admitted; nothing to score.
                (BreakerState::Open, _) => {}
            }
        }
    }

    /// Drains the transitions recorded since the last call (the driver
    /// folds them into the run's audit trail each slot).
    pub fn drain_transitions(&mut self) -> Vec<BreakerTransition> {
        std::mem::take(&mut self.transitions)
    }
}

impl Snapshot for BreakerBank {
    fn encode(&self, w: &mut SnapWriter) {
        self.policy.encode(w);
        self.states.encode(w);
        self.transitions.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BreakerBank {
            policy: Snapshot::decode(r)?,
            states: Snapshot::decode(r)?,
            transitions: Snapshot::decode(r)?,
        })
    }
}

/// The outcome of one full MEV-Boost proposal round.
#[derive(Debug, Clone, PartialEq)]
pub struct ProposeReport {
    /// The signed header, if any relay produced an acceptable one.
    pub choice: Option<HeaderChoice>,
    /// The relay that served `getPayload` (primary unless it failed and a
    /// fallback relay carrying the same header stepped in).
    pub payload_relay: Option<RelayId>,
    /// True when a header was signed but no carrying relay delivered the
    /// payload — the proposer can no longer build locally (it signed) and
    /// the slot is missed.
    pub missed: bool,
    /// Every decision taken, in order.
    pub events: Vec<BoostEvent>,
}

/// The validator-side relay client.
#[derive(Debug, Clone)]
pub struct MevBoostClient {
    /// Relays in the validator's config file.
    pub subscribed: Vec<RelayId>,
    /// The `min-bid` flag: headers below this value are ignored and the
    /// validator builds locally instead (introduced by MEV-Boost after the
    /// censorship debate; 0 during the study period).
    pub min_bid: Wei,
    /// Per-relay request retry policy.
    pub retry: RetryPolicy,
    /// Optional per-slot deadline budget; `None` (the default) reproduces
    /// the pre-chaos client byte for byte.
    pub budget: Option<SlotBudget>,
}

impl MevBoostClient {
    /// Creates a client subscribed to the given relays, with no min-bid.
    pub fn new(subscribed: Vec<RelayId>) -> Self {
        MevBoostClient {
            subscribed,
            min_bid: Wei::ZERO,
            retry: RetryPolicy::default(),
            budget: None,
        }
    }

    /// Sets the `min-bid` threshold.
    pub fn with_min_bid(mut self, min_bid: Wei) -> Self {
        self.min_bid = min_bid;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the per-slot deadline budget.
    pub fn with_budget(mut self, budget: SlotBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Queries every subscribed relay and returns the most profitable
    /// header, or `None` when no relay holds a block. Ignores injected
    /// faults — this is the instantaneous best-escrow view; use
    /// [`MevBoostClient::propose`] for the full fault-aware round.
    pub fn best_header(&self, relays: &RelayRegistry) -> Option<HeaderChoice> {
        let mut best: Option<HeaderChoice> = None;
        for &rid in &self.subscribed {
            let Some(relay) = relays.get(rid) else {
                continue;
            };
            if let Some(bid) = relay.best_bid() {
                merge_header(&mut best, rid, &bid.submission);
            }
        }
        // min-bid: prefer local building over cheap relay blocks.
        best.filter(|b| b.promised >= self.min_bid)
    }

    /// Runs one full proposal round against the registry, honoring each
    /// relay's injected fault state:
    ///
    /// 1. **getHeader with bounded retry** — relays are queried in
    ///    subscription order (the deterministic fallback order); each
    ///    timeout burns one attempt and a deterministic backoff, and a
    ///    relay that exhausts the budget is skipped.
    /// 2. **Selection** — the highest bid wins (ties on the same
    ///    builder/pubkey accrue extra carrying relays, the multi-relay
    ///    blocks of §4.1); `min-bid` can still veto it.
    /// 3. **Signing** — at most one header is signed per slot.
    /// 4. **getPayload with multi-relay fallback** — the carrying relays
    ///    are tried in order; if all fail, the slot is missed (the client
    ///    cannot fall back to a local build after signing).
    ///
    /// When no header is signed the caller must self-build; `events` then
    /// ends with [`BoostEvent::SelfBuild`].
    ///
    /// With every relay healthy this is byte-equivalent to
    /// [`MevBoostClient::best_header`] plus a successful payload fetch
    /// from the primary relay.
    pub fn propose(&self, relays: &RelayRegistry) -> ProposeReport {
        let report = self.propose_inner(relays, None);
        if simcore::telemetry::enabled() {
            record_boost_telemetry(&report, relays);
        }
        report
    }

    /// [`MevBoostClient::propose`] against the relays' timed bid books:
    /// every `getHeader` is answered from the relay's view *as of the
    /// query instant* (degraded stale relays serve the view as of
    /// `now - staleness_lag`), so faults now interact with sub-slot time.
    pub fn propose_timed(&self, relays: &RelayRegistry, query: TimedQuery) -> ProposeReport {
        let report = self.propose_inner(relays, Some(query));
        if simcore::telemetry::enabled() {
            record_boost_telemetry(&report, relays);
        }
        report
    }

    fn propose_inner(&self, relays: &RelayRegistry, timed: Option<TimedQuery>) -> ProposeReport {
        let mut events = Vec::new();
        let mut best: Option<HeaderChoice> = None;
        // Deadline-budget accounting: every query round trip and every
        // retry backoff is waited out in simulated time. `None` budget
        // never exhausts, keeping the pre-chaos event trail byte-exact.
        let query_cost = self.budget.map(|b| b.query_cost_ms).unwrap_or(0);
        let mut spent_ms = 0u64;
        let exhausted =
            |spent: u64, budget: Option<SlotBudget>| budget.is_some_and(|b| spent >= b.budget_ms);
        for &rid in &self.subscribed {
            let Some(relay) = relays.get(rid) else {
                continue;
            };
            if exhausted(spent_ms, self.budget) {
                events.push(BoostEvent::BudgetExhausted { relay: rid });
                break;
            }
            let wasted = relay.faults.wasted_attempts;
            if wasted > 0 {
                let answered_on = wasted.saturating_add(1);
                for attempt in 1..=self.retry.max_attempts.min(wasted) {
                    let backoff_ms = self.retry.backoff_ms(attempt);
                    events.push(BoostEvent::HeaderTimeout {
                        relay: rid,
                        attempt,
                        backoff_ms,
                    });
                    spent_ms = spent_ms
                        .saturating_add(query_cost)
                        .saturating_add(backoff_ms);
                }
                if answered_on > self.retry.max_attempts {
                    events.push(BoostEvent::RelayUnreachable { relay: rid });
                    continue;
                }
            }
            spent_ms = spent_ms.saturating_add(query_cost);
            // Timed rounds read the bid book at the query instant; the
            // one-shot path reads the flat escrow. The stale event fires
            // when the served view differs from the relay's own fresh
            // view at the same instant.
            let (served, fresh) = match timed {
                Some(q) => (
                    relay.serve_header_at(q.now, q.staleness_lag_ms),
                    relay.book_view_at(q.now),
                ),
                None => (relay.serve_header(), relay.best_bid()),
            };
            if relay.faults.stale_response
                && served.map(|b| b.submission.declared_bid)
                    != fresh.map(|b| b.submission.declared_bid)
            {
                events.push(BoostEvent::StaleHeader { relay: rid });
            }
            if let Some(bid) = served {
                merge_header(&mut best, rid, &bid.submission);
            }
        }
        if let Some(b) = &best {
            if b.promised < self.min_bid {
                events.push(BoostEvent::BelowMinBid {
                    promised: b.promised,
                });
                best = None;
            }
        }
        let Some(choice) = best else {
            events.push(BoostEvent::SelfBuild);
            return ProposeReport {
                choice: None,
                payload_relay: None,
                missed: false,
                events,
            };
        };
        let primary = choice.relays[0];
        events.push(BoostEvent::HeaderSigned {
            relay: primary,
            builder: choice.builder,
            promised: choice.promised,
        });
        let mut payload_relay = None;
        for &rid in &choice.relays {
            if exhausted(spent_ms, self.budget) {
                events.push(BoostEvent::BudgetExhausted { relay: rid });
                break;
            }
            spent_ms = spent_ms.saturating_add(query_cost);
            let fails = relays
                .get(rid)
                .map(|r| r.faults.payload_failure)
                .unwrap_or(true);
            if fails {
                events.push(BoostEvent::PayloadFailed { relay: rid });
            } else {
                events.push(BoostEvent::PayloadDelivered { relay: rid });
                payload_relay = Some(rid);
                break;
            }
        }
        let missed = payload_relay.is_none();
        if missed {
            events.push(BoostEvent::SlotMissed { relay: primary });
        }
        ProposeReport {
            choice: Some(choice),
            payload_relay,
            missed,
            events,
        }
    }
}

/// Translates one proposal round's event trail into telemetry counters:
/// a per-kind total plus a per-relay labeled series for every relay-
/// attributed event. Deterministic (counts simulated events only).
fn record_boost_telemetry(report: &ProposeReport, relays: &RelayRegistry) {
    use simcore::telemetry;
    let relay_name = |rid: RelayId| relays.get(rid).map(|r| r.info.name).unwrap_or("unknown");
    let labeled = |metric: &str, rid: RelayId| {
        telemetry::counter_add(metric, 1);
        telemetry::counter_add(&format!("{metric}{{relay=\"{}\"}}", relay_name(rid)), 1);
    };
    for event in &report.events {
        match *event {
            BoostEvent::HeaderTimeout { relay, .. } => {
                labeled("pbs.boost.header_timeouts", relay);
                telemetry::counter_add("pbs.boost.retries", 1);
            }
            BoostEvent::RelayUnreachable { relay } => labeled("pbs.boost.unreachable", relay),
            BoostEvent::StaleHeader { relay } => labeled("pbs.boost.stale_headers", relay),
            BoostEvent::BelowMinBid { .. } => telemetry::counter_add("pbs.boost.below_min_bid", 1),
            BoostEvent::HeaderSigned { relay, .. } => labeled("pbs.boost.headers_signed", relay),
            BoostEvent::PayloadFailed { relay } => labeled("pbs.boost.payload_failures", relay),
            BoostEvent::PayloadDelivered { relay } => {
                labeled("pbs.boost.payloads_delivered", relay)
            }
            BoostEvent::SelfBuild => telemetry::counter_add("pbs.boost.self_builds", 1),
            BoostEvent::SlotMissed { relay } => labeled("pbs.boost.missed_slots", relay),
            BoostEvent::ShortfallInjected { relay, .. } => labeled("pbs.boost.shortfalls", relay),
            BoostEvent::BudgetExhausted { relay } => labeled("pbs.boost.budget_exhausted", relay),
            BoostEvent::BuilderShortfall { .. } => {
                telemetry::counter_add("pbs.boost.builder_shortfalls", 1)
            }
        }
    }
    // A delivery by a non-primary carrying relay is a successful fallback.
    if let (Some(choice), Some(delivering)) = (&report.choice, report.payload_relay) {
        if delivering != choice.relays[0] {
            telemetry::counter_add("pbs.boost.payload_fallbacks", 1);
        }
    }
}

/// The bid-merge rule shared by `best_header` and `propose`: strictly
/// higher bids replace; equal bids from the same (builder, pubkey) accrue
/// an extra carrying relay.
fn merge_header(best: &mut Option<HeaderChoice>, rid: RelayId, s: &crate::relay::Submission) {
    match best {
        None => {
            *best = Some(HeaderChoice {
                promised: s.declared_bid,
                builder: s.builder,
                pubkey: s.pubkey,
                relays: vec![rid],
            });
        }
        Some(cur) => {
            if s.declared_bid > cur.promised {
                *cur = HeaderChoice {
                    promised: s.declared_bid,
                    builder: s.builder,
                    pubkey: s.pubkey,
                    relays: vec![rid],
                };
            } else if s.declared_bid == cur.promised
                && s.builder == cur.builder
                && s.pubkey == cur.pubkey
            {
                cur.relays.push(rid);
            }
        }
    }
}

/// The non-PBS path: local block building with naive gas-price ordering.
#[derive(Debug, Clone)]
pub struct LocalBuilder {
    /// Block gas limit.
    pub gas_limit: Gas,
}

impl Default for LocalBuilder {
    fn default() -> Self {
        LocalBuilder {
            gas_limit: Gas::BLOCK_LIMIT,
        }
    }
}

impl LocalBuilder {
    /// Builds from the proposer's own mempool view, ordering by gas price
    /// (ignoring coinbase bribes it has no tooling to see), plus any
    /// private transactions delivered directly to this proposer.
    pub fn build(
        &self,
        mempool: &Mempool,
        direct: &[Transaction],
        base_fee: GasPrice,
    ) -> (Vec<Transaction>, Wei) {
        let mut txs = mempool.select_gas_price_ordered(base_fee, self.gas_limit);
        let mut gas: Gas = txs.iter().map(|t| t.gas_used()).sum();
        for t in direct {
            if t.includable_at(base_fee) && gas.0 + t.gas_used().0 <= self.gas_limit.0 {
                gas += t.gas_used();
                txs.push(t.clone());
            }
        }
        let value = txs.iter().map(|t| t.producer_value(base_fee)).sum();
        (txs, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::BuilderId;
    use crate::relay::{RelayRegistry, Submission};
    use eth_types::{Address, BlsPublicKey, DayIndex, Slot, TxEffect};
    use simcore::SeedDomain;

    fn submission(bid_eth: f64, builder: u32, key: &str) -> Submission {
        Submission {
            slot: Slot(1),
            builder: BuilderId(builder),
            pubkey: BlsPublicKey::derive(key),
            declared_bid: Wei::from_eth(bid_eth),
            true_bid: Wei::from_eth(bid_eth),
            sandwich_count: 0,
            flagged_by_blacklist: false,
        }
    }

    #[test]
    fn picks_highest_bid_across_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.05, 1, "k1"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.promised, Wei::from_eth(0.09));
        assert_eq!(choice.builder, BuilderId(2));
        assert_eq!(choice.relays, vec![u]);
    }

    #[test]
    fn identical_bids_from_same_builder_claim_multiple_relays() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a, u]);
        let choice = client.best_header(&relays).unwrap();
        assert_eq!(choice.relays.len(), 2);
    }

    #[test]
    fn min_bid_filters_cheap_headers() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.01, 2, "k2"), DayIndex(0));
        let client = MevBoostClient::new(vec![u]).with_min_bid(Wei::from_eth(0.05));
        assert!(client.best_header(&relays).is_none(), "0.01 < min-bid 0.05");
        let eager = MevBoostClient::new(vec![u]);
        assert!(eager.best_header(&relays).is_some());
    }

    #[test]
    fn unsubscribed_relays_are_invisible() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));

        let client = MevBoostClient::new(vec![a]);
        assert!(client.best_header(&relays).is_none());
    }

    fn two_relay_setup() -> (RelayRegistry, RelayId, RelayId) {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        relays
            .get_mut(a)
            .unwrap()
            .consider(submission(0.05, 1, "k1"), DayIndex(0));
        relays
            .get_mut(u)
            .unwrap()
            .consider(submission(0.09, 2, "k2"), DayIndex(0));
        (relays, a, u)
    }

    #[test]
    fn healthy_propose_matches_best_header() {
        let (relays, a, u) = two_relay_setup();
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert_eq!(report.choice, client.best_header(&relays));
        assert_eq!(report.payload_relay, Some(u));
        assert!(!report.missed);
        assert_eq!(
            report.events,
            vec![
                BoostEvent::HeaderSigned {
                    relay: u,
                    builder: BuilderId(2),
                    promised: Wei::from_eth(0.09),
                },
                BoostEvent::PayloadDelivered { relay: u },
            ]
        );
    }

    #[test]
    fn backoff_saturates_at_extreme_attempts_and_bases() {
        let p = RetryPolicy::default();
        // The documented doubling schedule is unchanged in-range.
        assert_eq!(p.backoff_ms(1), 50);
        assert_eq!(p.backoff_ms(2), 100);
        assert_eq!(p.backoff_ms(3), 200);
        // Attempt numbers beyond the shift cap stop doubling…
        assert_eq!(p.backoff_ms(17), 50 << 16);
        assert_eq!(p.backoff_ms(u32::MAX), 50 << 16);
        // …and large bases saturate instead of wrapping to ~zero.
        let huge = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: u64::MAX / 2,
        };
        assert_eq!(huge.backoff_ms(1), u64::MAX / 2);
        assert_eq!(huge.backoff_ms(2), u64::MAX - 1);
        assert_eq!(huge.backoff_ms(3), u64::MAX);
        assert_eq!(huge.backoff_ms(u32::MAX), u64::MAX);
        let max = RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: u64::MAX,
        };
        assert_eq!(max.backoff_ms(1), u64::MAX);
        assert_eq!(max.backoff_ms(u32::MAX), u64::MAX);
    }

    #[test]
    fn unreachable_relay_falls_back_to_next() {
        let (mut relays, a, u) = two_relay_setup();
        let best = relays.get_mut(u).unwrap();
        best.faults.health = simcore::Health::Degraded;
        best.faults.wasted_attempts = u32::MAX;
        let client = MevBoostClient::new(vec![u, a]);
        let report = client.propose(&relays);
        // Three timeouts with doubling backoff, then give up on `u`.
        assert_eq!(
            &report.events[..4],
            &[
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 1,
                    backoff_ms: 50,
                },
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 2,
                    backoff_ms: 100,
                },
                BoostEvent::HeaderTimeout {
                    relay: u,
                    attempt: 3,
                    backoff_ms: 200,
                },
                BoostEvent::RelayUnreachable { relay: u },
            ]
        );
        let choice = report.choice.expect("fallback relay still answers");
        assert_eq!(choice.relays, vec![a]);
        assert_eq!(choice.promised, Wei::from_eth(0.05));
        assert_eq!(report.payload_relay, Some(a));
    }

    #[test]
    fn timeouts_within_budget_still_reach_the_relay() {
        let (mut relays, a, u) = two_relay_setup();
        relays.get_mut(u).unwrap().faults.health = simcore::Health::Degraded;
        relays.get_mut(u).unwrap().faults.wasted_attempts = 2;
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert_eq!(
            report
                .events
                .iter()
                .filter(|e| matches!(e, BoostEvent::HeaderTimeout { .. }))
                .count(),
            2
        );
        assert_eq!(report.choice.unwrap().relays, vec![u]);
    }

    #[test]
    fn stale_relay_serves_previous_best() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        let relay = relays.get_mut(u).unwrap();
        relay.consider(submission(0.05, 1, "k1"), DayIndex(0));
        relay.consider(submission(0.09, 2, "k2"), DayIndex(0));
        relay.faults.health = simcore::Health::Degraded;
        relay.faults.stale_response = true;
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert!(report
            .events
            .contains(&BoostEvent::StaleHeader { relay: u }));
        // The stale view misses the late 0.09 bid.
        assert_eq!(report.choice.unwrap().promised, Wei::from_eth(0.05));
    }

    #[test]
    fn payload_failure_on_sole_relay_misses_the_slot() {
        let (mut relays, a, u) = two_relay_setup();
        let _ = a;
        relays.get_mut(u).unwrap().faults.payload_failure = true;
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert!(report.missed);
        assert_eq!(report.payload_relay, None);
        assert_eq!(
            &report.events[1..],
            &[
                BoostEvent::PayloadFailed { relay: u },
                BoostEvent::SlotMissed { relay: u },
            ]
        );
    }

    #[test]
    fn payload_fallback_uses_secondary_carrying_relay() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(2));
        let a = relays.id_by_name("Aestus");
        let u = relays.id_by_name("UltraSound");
        for r in [a, u] {
            relays
                .get_mut(r)
                .unwrap()
                .consider(submission(0.09, 2, "k2"), DayIndex(0));
        }
        relays.get_mut(a).unwrap().faults.payload_failure = true;
        let client = MevBoostClient::new(vec![a, u]);
        let report = client.propose(&relays);
        assert!(!report.missed);
        assert_eq!(report.payload_relay, Some(u));
        assert!(report
            .events
            .contains(&BoostEvent::PayloadFailed { relay: a }));
    }

    #[test]
    fn no_acceptable_header_yields_self_build() {
        let relays = RelayRegistry::paper(&SeedDomain::new(2));
        let u = relays.id_by_name("UltraSound");
        let client = MevBoostClient::new(vec![u]);
        let report = client.propose(&relays);
        assert_eq!(report.choice, None);
        assert!(!report.missed);
        assert_eq!(report.events, vec![BoostEvent::SelfBuild]);
    }

    fn test_policy() -> BreakerPolicy {
        BreakerPolicy {
            trip_failures: 3,
            open_slots: 8,
            probe_successes: 2,
        }
    }

    #[test]
    fn breaker_trips_open_after_consecutive_failures() {
        let mut bank = BreakerBank::new(test_policy(), 4);
        let rid = RelayId(1);
        for slot in 0..3 {
            let (admitted, skipped) = bank.admit(slot, &[rid]);
            assert_eq!(admitted, vec![rid]);
            assert!(skipped.is_empty());
            bank.observe(
                slot,
                &admitted,
                &[BoostEvent::RelayUnreachable { relay: rid }],
            );
        }
        assert_eq!(bank.state(rid), BreakerState::Open);
        // While Open the relay is skipped, not queried.
        let (admitted, skipped) = bank.admit(3, &[rid]);
        assert!(admitted.is_empty());
        assert_eq!(skipped, vec![rid]);
        let t = bank.drain_transitions();
        assert_eq!(
            t,
            vec![BreakerTransition {
                slot: 2,
                relay: rid,
                from: BreakerState::Closed,
                to: BreakerState::Open,
            }]
        );
        assert!(bank.drain_transitions().is_empty(), "drain clears the log");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut bank = BreakerBank::new(test_policy(), 4);
        let rid = RelayId(0);
        for slot in 0..2 {
            bank.observe(slot, &[rid], &[BoostEvent::PayloadFailed { relay: rid }]);
        }
        // A clean slot (no failure event naming the relay) resets.
        bank.observe(2, &[rid], &[]);
        for slot in 3..5 {
            bank.observe(slot, &[rid], &[BoostEvent::PayloadFailed { relay: rid }]);
        }
        assert_eq!(bank.state(rid), BreakerState::Closed);
        bank.observe(5, &[rid], &[BoostEvent::PayloadFailed { relay: rid }]);
        assert_eq!(bank.state(rid), BreakerState::Open);
    }

    #[test]
    fn breaker_half_opens_then_closes_on_probe_successes() {
        let mut bank = BreakerBank::new(test_policy(), 4);
        let rid = RelayId(2);
        for slot in 0..3 {
            bank.observe(slot, &[rid], &[BoostEvent::StaleHeader { relay: rid }]);
        }
        assert_eq!(bank.state(rid), BreakerState::Open);
        // Cooldown not yet expired at slot 9 (opened at 2, opens at 10).
        let (admitted, _) = bank.admit(9, &[rid]);
        assert!(admitted.is_empty());
        // At slot 10 the breaker half-opens and the relay is probed.
        let (admitted, skipped) = bank.admit(10, &[rid]);
        assert_eq!(admitted, vec![rid]);
        assert!(skipped.is_empty());
        assert_eq!(bank.state(rid), BreakerState::HalfOpen);
        bank.observe(10, &admitted, &[]);
        assert_eq!(bank.state(rid), BreakerState::HalfOpen);
        let (admitted, _) = bank.admit(11, &[rid]);
        bank.observe(11, &admitted, &[]);
        assert_eq!(bank.state(rid), BreakerState::Closed);
        let kinds: Vec<(BreakerState, BreakerState)> = bank
            .drain_transitions()
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        assert_eq!(
            kinds,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn failed_probe_reopens_and_restarts_the_cooldown() {
        let mut bank = BreakerBank::new(test_policy(), 4);
        let rid = RelayId(3);
        for slot in 0..3 {
            bank.observe(slot, &[rid], &[BoostEvent::PayloadFailed { relay: rid }]);
        }
        let (admitted, _) = bank.admit(10, &[rid]);
        assert_eq!(bank.state(rid), BreakerState::HalfOpen);
        bank.observe(10, &admitted, &[BoostEvent::PayloadFailed { relay: rid }]);
        assert_eq!(bank.state(rid), BreakerState::Open);
        // The cooldown restarts from the failed probe's slot.
        let (admitted, _) = bank.admit(17, &[rid]);
        assert!(admitted.is_empty());
        let (admitted, _) = bank.admit(18, &[rid]);
        assert_eq!(admitted, vec![rid]);
    }

    #[test]
    fn breaker_bank_round_trips_through_snapshot() {
        let mut bank = BreakerBank::new(test_policy(), 11);
        for slot in 0..3 {
            bank.observe(
                slot,
                &[RelayId(5)],
                &[BoostEvent::RelayUnreachable { relay: RelayId(5) }],
            );
        }
        let mut w = SnapWriter::new();
        bank.encode(&mut w);
        let bytes = w.into_bytes();
        let back = BreakerBank::decode(&mut SnapReader::new(&bytes)).unwrap();
        assert_eq!(bank, back);
    }

    #[test]
    fn no_budget_never_exhausts() {
        let (mut relays, a, u) = two_relay_setup();
        let best = relays.get_mut(u).unwrap();
        best.faults.health = simcore::Health::Degraded;
        best.faults.wasted_attempts = u32::MAX;
        let client = MevBoostClient::new(vec![u, a]);
        let report = client.propose(&relays);
        assert!(!report
            .events
            .iter()
            .any(|e| matches!(e, BoostEvent::BudgetExhausted { .. })));
    }

    #[test]
    fn exhausted_budget_skips_remaining_relays() {
        let (mut relays, a, u) = two_relay_setup();
        // `u` burns the whole budget with retries; `a` is never queried.
        let best = relays.get_mut(u).unwrap();
        best.faults.health = simcore::Health::Degraded;
        best.faults.wasted_attempts = u32::MAX;
        let client = MevBoostClient::new(vec![u, a]).with_budget(SlotBudget {
            budget_ms: 300,
            query_cost_ms: 150,
        });
        let report = client.propose(&relays);
        // 3 timeouts (150+50, 150+100, 150+200 = 800ms ≥ 300) exhaust
        // the budget before relay `a`'s turn; the client then self-builds.
        assert_eq!(
            &report.events[4..],
            &[
                BoostEvent::BudgetExhausted { relay: a },
                BoostEvent::SelfBuild,
            ]
        );
        assert_eq!(report.choice, None, "no relay answered in budget");
        assert!(!report.missed, "nothing signed, proposer self-builds");
    }

    #[test]
    fn budget_exhaustion_after_signing_misses_the_slot() {
        let (relays, a, u) = two_relay_setup();
        let _ = a;
        // One header query fits the budget exactly; getPayload does not.
        let client = MevBoostClient::new(vec![u]).with_budget(SlotBudget {
            budget_ms: 150,
            query_cost_ms: 150,
        });
        let report = client.propose(&relays);
        assert!(report.missed);
        assert_eq!(report.payload_relay, None);
        assert_eq!(
            &report.events[1..],
            &[
                BoostEvent::BudgetExhausted { relay: u },
                BoostEvent::SlotMissed { relay: u },
            ]
        );
    }

    #[test]
    fn generous_budget_changes_nothing() {
        let (relays, a, u) = two_relay_setup();
        let plain = MevBoostClient::new(vec![a, u]);
        let budgeted = plain.clone().with_budget(SlotBudget {
            budget_ms: 12_000,
            query_cost_ms: 150,
        });
        assert_eq!(plain.propose(&relays), budgeted.propose(&relays));
    }

    #[test]
    fn local_builder_uses_gas_price_not_bribes() {
        let mut mempool = Mempool::new(64);
        let mut briber = Transaction::transfer(
            Address::derive("briber"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(0.1),
            GasPrice::from_gwei(100.0),
        );
        briber.coinbase_tip = Wei::from_eth(1.0);
        mempool.insert(briber.finalize());
        let tipper = Transaction::transfer(
            Address::derive("tipper"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(30.0),
            GasPrice::from_gwei(100.0),
        );
        mempool.insert(tipper.clone());

        let (txs, _) = LocalBuilder {
            gas_limit: Gas(21_000),
        }
        .build(&mempool, &[], GasPrice::from_gwei(5.0));
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, tipper.hash);
    }

    #[test]
    fn local_builder_includes_direct_private_flow() {
        let mempool = Mempool::new(64);
        let direct = Transaction::transfer(
            Address::derive("binance"),
            Address::derive("hot-wallet"),
            Wei::from_eth(100.0),
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        let (txs, value) = LocalBuilder::default().build(
            &mempool,
            std::slice::from_ref(&direct),
            GasPrice::from_gwei(1.0),
        );
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].hash, direct.hash);
        assert_eq!(value, direct.producer_value(GasPrice::from_gwei(1.0)));
    }

    #[test]
    fn local_builder_respects_gas_limit_for_direct_txs() {
        let mempool = Mempool::new(4);
        let mut big = Transaction::transfer(
            Address::derive("big"),
            Address::derive("d"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(3.0),
            GasPrice::from_gwei(100.0),
        );
        big.effect = TxEffect::Generic {
            extra_gas: 40_000_000,
        };
        let (txs, _) =
            LocalBuilder::default().build(&mempool, &[big.finalize()], GasPrice::from_gwei(1.0));
        assert!(txs.is_empty());
    }
}
