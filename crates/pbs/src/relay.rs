//! Relays (paper §2.2, §3.3, §4.1, Tables 2–4).
//!
//! Relays hold builders' blocks in escrow, forward the header of the most
//! profitable one to subscribed proposers, and release the full block once
//! the proposer signs. The eleven relays of the study differ in builder
//! access policy, OFAC compliance, and MEV filtering (Table 3) — and in
//! how faithfully they keep those promises (Table 4, §5.2, §5.4, §6):
//!
//! * censoring relays filter with a *lagged* blacklist copy,
//! * bloXroute (Ethical)'s front-running filter has per-attack misses,
//! * most relays occasionally deliver slightly less than they promised,
//! * Manifold did not verify declared bid values until its 15 Oct 2022
//!   incident, letting a builder steal 184 blocks' rewards.

use crate::builder::BuilderId;
use crate::ofac::{RelayBlacklist, SanctionsList};
use beacon::ValidatorId;
use eth_types::{BlsPublicKey, DayIndex, Slot, Wei};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{ComponentFaults, Health, SimTime};
use std::collections::BTreeSet;

/// Index of a relay in the registry (stable across the run).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct RelayId(pub u32);

impl simcore::Snapshot for RelayId {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.0.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(RelayId(simcore::Snapshot::decode(r)?))
    }
}

/// How a relay admits builders (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuilderPolicy {
    /// Only the relay's own builders (Blocknative, Eden).
    Internal,
    /// Own builders plus vetted external ones (the bloXroute relays).
    InternalAndExternal,
    /// Anyone may submit (Aestus, GnosisDAO, Manifold, Relayooor, UltraSound).
    Permissionless,
    /// Own builder plus permissionless externals (Flashbots).
    InternalAndPermissionless,
}

/// Static, paper-documented facts about a relay (Tables 2 and 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayStaticInfo {
    /// Relay name as the paper prints it.
    pub name: &'static str,
    /// Public API endpoint (Table 2).
    pub endpoint: &'static str,
    /// Implementation fork (Table 2): "MEV Boost" or "Dreamboat".
    pub fork: &'static str,
    /// Builder admission policy (Table 3).
    pub builder_policy: BuilderPolicy,
    /// Self-reported OFAC compliance (Table 3).
    pub ofac_compliant: bool,
    /// Self-reported MEV filter (Table 3); only bloXroute (E) has one.
    pub mev_filter: Option<&'static str>,
}

/// The eleven relays crawled in the study, in Table 2 order.
pub const PAPER_RELAYS: [RelayStaticInfo; 11] = [
    RelayStaticInfo {
        name: "Aestus",
        endpoint: "https://aestus.live",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Permissionless,
        ofac_compliant: false,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "Blocknative",
        endpoint: "https://builder-relay-mainnet.blocknative.com",
        fork: "Dreamboat",
        builder_policy: BuilderPolicy::Internal,
        ofac_compliant: true,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "bloXroute (E)",
        endpoint: "https://bloxroute.ethical.blxrbdn.com",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::InternalAndExternal,
        ofac_compliant: false,
        mev_filter: Some("front-running"),
    },
    RelayStaticInfo {
        name: "bloXroute (M)",
        endpoint: "https://bloxroute.max-profit.blxrbdn.com",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::InternalAndExternal,
        ofac_compliant: false,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "bloXroute (R)",
        endpoint: "https://bloxroute.regulated.blxrbdn.com",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::InternalAndExternal,
        ofac_compliant: true,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "Eden",
        endpoint: "https://relay.edennetwork.io",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Internal,
        ofac_compliant: true,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "Flashbots",
        endpoint: "https://boost-relay.flashbots.net",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::InternalAndPermissionless,
        ofac_compliant: true,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "GnosisDAO",
        endpoint: "https://agnostic-relay.net",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Permissionless,
        ofac_compliant: false,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "Manifold",
        endpoint: "https://mainnet-relay.securerpc.com",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Permissionless,
        ofac_compliant: false,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "Relayooor",
        endpoint: "https://relayooor.wtf",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Permissionless,
        ofac_compliant: false,
        mev_filter: None,
    },
    RelayStaticInfo {
        name: "UltraSound",
        endpoint: "https://relay.ultrasound.money",
        fork: "MEV Boost",
        builder_policy: BuilderPolicy::Permissionless,
        ofac_compliant: false,
        mev_filter: None,
    },
];

/// A builder's block submission as a relay sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct Submission {
    /// Slot being bid for.
    pub slot: Slot,
    /// Submitting builder.
    pub builder: BuilderId,
    /// Submission key.
    pub pubkey: BlsPublicKey,
    /// Declared bid (the value promised to the proposer).
    pub declared_bid: Wei,
    /// The block's true deliverable value + subsidy (what an honest
    /// payment tx would carry). Verifying relays compare against this.
    pub true_bid: Wei,
    /// Sandwich attacks contained in the block (for MEV filtering).
    pub sandwich_count: usize,
    /// Whether the block contains transactions *this relay's* blacklist
    /// would flag (computed by the caller against the relay's lagged copy).
    pub flagged_by_blacklist: bool,
}

impl simcore::Snapshot for Submission {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.slot.encode(w);
        self.builder.encode(w);
        self.pubkey.encode(w);
        self.declared_bid.encode(w);
        self.true_bid.encode(w);
        self.sandwich_count.encode(w);
        self.flagged_by_blacklist.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        use simcore::Snapshot;
        Ok(Submission {
            slot: Snapshot::decode(r)?,
            builder: Snapshot::decode(r)?,
            pubkey: Snapshot::decode(r)?,
            declared_bid: Snapshot::decode(r)?,
            true_bid: Snapshot::decode(r)?,
            sandwich_count: Snapshot::decode(r)?,
            flagged_by_blacklist: Snapshot::decode(r)?,
        })
    }
}

/// A submission the relay accepted and holds in escrow.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceptedBid {
    /// The underlying submission.
    pub submission: Submission,
}

impl simcore::Snapshot for AcceptedBid {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.submission.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(AcceptedBid {
            submission: simcore::Snapshot::decode(r)?,
        })
    }
}

/// One entry of a relay's time-ordered bid book (the streamed auction's
/// replacement for the flat escrow `pending` list).
#[derive(Debug, Clone, PartialEq)]
pub struct BookEntry {
    /// The accepted bid.
    pub bid: AcceptedBid,
    /// When the bid arrived at the relay (absolute simulated time).
    pub arrival: SimTime,
    /// Whether the builder cancelled this bid before the cutoff. A
    /// cancellation voids the bid for *every* view — the relay treats a
    /// cancelled bid as if it never existed, so a cancelled bid can never
    /// win under any serving policy.
    pub cancelled: bool,
}

impl simcore::Snapshot for BookEntry {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.bid.encode(w);
        self.arrival.encode(w);
        self.cancelled.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        use simcore::Snapshot;
        Ok(BookEntry {
            bid: Snapshot::decode(r)?,
            arrival: Snapshot::decode(r)?,
            cancelled: Snapshot::decode(r)?,
        })
    }
}

/// A live relay: static info plus behavioural state.
#[derive(Debug)]
pub struct Relay {
    /// Registry index.
    pub id: RelayId,
    /// Static facts.
    pub info: RelayStaticInfo,
    /// The relay's lagged blacklist (None for non-censoring relays).
    pub blacklist: Option<RelayBlacklist>,
    /// Builders this relay admits; `None` = permissionless.
    pub allowed_builders: Option<BTreeSet<BuilderId>>,
    /// Day from which declared bids are verified against true value.
    /// `None` = always verified. Manifold: only after the Oct 15 incident.
    pub bid_verification_from: Option<DayIndex>,
    /// Per-sandwich detection probability of the MEV filter (bloXroute E).
    pub mev_filter_recall: f64,
    /// Per-block probability of a small delivery shortfall (Table 4).
    pub shortfall_prob: f64,
    /// Fraction of the promised value lost when a shortfall occurs.
    pub shortfall_frac: f64,
    /// Injected fault state for the current slot (default: no faults).
    /// The scenario driver refreshes this every slot when a fault
    /// schedule is active; otherwise it stays at the all-healthy default.
    pub faults: ComponentFaults,
    /// Validators currently registered with this relay.
    registered: BTreeSet<ValidatorId>,
    pending: Vec<AcceptedBid>,
    book: Vec<BookEntry>,
    rng: StdRng,
}

impl Relay {
    /// Creates a relay with default-honest behaviour.
    pub fn new(id: RelayId, info: RelayStaticInfo, rng: StdRng) -> Self {
        let blacklist = info.ofac_compliant.then(|| RelayBlacklist::with_lag(2));
        let mev_filter_recall = if info.mev_filter.is_some() { 0.85 } else { 0.0 };
        Relay {
            id,
            info,
            blacklist,
            allowed_builders: None,
            bid_verification_from: None,
            mev_filter_recall,
            shortfall_prob: 0.0,
            shortfall_frac: 0.01,
            faults: ComponentFaults::default(),
            registered: BTreeSet::new(),
            pending: Vec::new(),
            book: Vec::new(),
            rng,
        }
    }

    /// Whether this relay admits `builder`.
    pub fn admits(&self, builder: BuilderId) -> bool {
        match &self.allowed_builders {
            None => true,
            Some(set) => set.contains(&builder),
        }
    }

    /// Whether the relay verifies declared bids on `day`.
    pub fn verifies_bids_on(&self, day: DayIndex) -> bool {
        match self.bid_verification_from {
            None => true,
            Some(from) => day >= from,
        }
    }

    /// Whether a block with `tx` touching `address` would be censored by
    /// this relay's (lagged) blacklist on `day`.
    pub fn blacklist_flags(
        &self,
        source: &SanctionsList,
        address: eth_types::Address,
        day: DayIndex,
    ) -> bool {
        match &self.blacklist {
            None => false,
            Some(bl) => bl.lists(source, address, day),
        }
    }

    /// Considers a submission; returns `true` if accepted into escrow.
    ///
    /// Rejection reasons, in order: relay down (injected outage — the
    /// submission times out before touching any policy); builder not
    /// admitted; blacklist flag (censoring relays); MEV filter catch
    /// (per-sandwich Bernoulli — imperfect, hence the 2,002 sandwiches
    /// that slipped through bloXroute (E) in the study); bid mismatch
    /// when verification is on.
    pub fn consider(&mut self, submission: Submission, day: DayIndex) -> bool {
        if !self.passes_gates(&submission, day) {
            return false;
        }
        self.pending.push(AcceptedBid { submission });
        true
    }

    /// The admission gates shared by [`Relay::consider`] and
    /// [`Relay::consider_timed`]. The gate *order* (and therefore the RNG
    /// draw sequence of the MEV filter) is part of the determinism
    /// contract: a timed auction in which every bid arrives instantly must
    /// consume `self.rng` exactly as the one-shot auction does.
    fn passes_gates(&mut self, submission: &Submission, day: DayIndex) -> bool {
        if self.faults.is_down() {
            return false;
        }
        if !self.admits(submission.builder) {
            return false;
        }
        if submission.flagged_by_blacklist {
            return false;
        }
        if self.mev_filter_recall > 0.0 && submission.sandwich_count > 0 {
            let mut caught = false;
            for _ in 0..submission.sandwich_count {
                if self.rng.random::<f64>() < self.mev_filter_recall {
                    caught = true;
                }
            }
            if caught {
                return false;
            }
        }
        if self.verifies_bids_on(day) && submission.declared_bid > submission.true_bid {
            return false;
        }
        true
    }

    /// Considers a timed submission for the bid book; returns `true` if
    /// accepted. A bid arriving after `deadline` is rejected *before* any
    /// policy gate (and before any RNG draw), so latency causality holds
    /// by construction: a late bid can never appear in any served view.
    pub fn consider_timed(
        &mut self,
        submission: Submission,
        day: DayIndex,
        arrival: SimTime,
        deadline: SimTime,
    ) -> bool {
        if arrival > deadline {
            return false;
        }
        if !self.passes_gates(&submission, day) {
            return false;
        }
        self.book.push(BookEntry {
            bid: AcceptedBid { submission },
            arrival,
            cancelled: false,
        });
        true
    }

    /// Processes a cancellation message arriving at `arrival`: voids the
    /// most recent live book entry matching `(builder, declared_bid)`.
    /// Returns `true` when a bid was actually cancelled. Messages arriving
    /// after `cutoff` are ignored (the bid stands — the paper-world rule
    /// that relays stop honoring cancellations near the slot boundary),
    /// as are cancels reaching a relay that is down.
    pub fn cancel_timed(
        &mut self,
        builder: BuilderId,
        declared_bid: Wei,
        arrival: SimTime,
        cutoff: SimTime,
    ) -> bool {
        if arrival > cutoff || self.faults.is_down() {
            return false;
        }
        for entry in self.book.iter_mut().rev() {
            if !entry.cancelled
                && entry.bid.submission.builder == builder
                && entry.bid.submission.declared_bid == declared_bid
            {
                entry.cancelled = true;
                return true;
            }
        }
        false
    }

    /// The best pending bid (what goes into the proposer's header).
    ///
    /// Exact ties on the declared bid are broken deterministically: the
    /// lower [`crate::BuilderId`] wins, then the earlier arrival.
    /// Pre-fix the winner fell to whichever submission *pubkey* compared
    /// larger — an accident of key derivation with no auction meaning.
    pub fn best_bid(&self) -> Option<&AcceptedBid> {
        Self::best_of(&self.pending)
    }

    /// Shared best-bid selection over an escrow slice, with the
    /// deterministic tie-break documented on [`Relay::best_bid`].
    fn best_of(bids: &[AcceptedBid]) -> Option<&AcceptedBid> {
        Self::best_of_iter(bids.iter().enumerate())
    }

    /// Best-bid selection over any indexed subset of bids, with the same
    /// tie-break as [`Relay::best_of`] (lower builder id, then the earlier
    /// index — book and escrow indices are arrival-ordered).
    fn best_of_iter<'a>(
        bids: impl Iterator<Item = (usize, &'a AcceptedBid)>,
    ) -> Option<&'a AcceptedBid> {
        bids.max_by(|(ia, a), (ib, b)| {
            a.submission
                .declared_bid
                .cmp(&b.submission.declared_bid)
                .then_with(|| b.submission.builder.cmp(&a.submission.builder))
                .then_with(|| ib.cmp(ia))
        })
        .map(|(_, b)| b)
    }

    /// The relay's top of book as of instant `t`: the best accepted,
    /// never-cancelled bid that had arrived by `t`. Cancellation voids a
    /// bid for every view (see [`BookEntry::cancelled`]), so this is
    /// monotone in `t` — later views never lose value.
    pub fn book_view_at(&self, t: SimTime) -> Option<&AcceptedBid> {
        Self::best_of_iter(
            self.book
                .iter()
                .enumerate()
                .filter(|(_, e)| e.arrival <= t && !e.cancelled)
                .map(|(i, e)| (i, &e.bid)),
        )
    }

    /// The header this relay serves a timed `getHeader` query at `now`,
    /// honoring injected faults: a down relay serves nothing, and a
    /// degraded relay with a stale cache serves its view as of
    /// `now - staleness_lag` — the sub-slot generalization of the
    /// one-shot "previous best" stale view, pinned by the regression test
    /// `degraded_stale_relay_serves_the_lagged_view`.
    pub fn serve_header_at(&self, now: SimTime, staleness_lag_ms: u64) -> Option<&AcceptedBid> {
        match self.faults.health {
            Health::Down => None,
            Health::Degraded if self.faults.stale_response => {
                self.book_view_at(SimTime(now.0.saturating_sub(staleness_lag_ms)))
            }
            _ => self.book_view_at(now),
        }
    }

    /// Number of live (non-cancelled) entries in the bid book.
    pub fn book_len(&self) -> usize {
        self.book.iter().filter(|e| !e.cancelled).count()
    }

    /// The header this relay serves a `getHeader` request right now,
    /// honoring injected faults: a down relay serves nothing, and a
    /// degraded relay with a stale cache serves the best bid as of
    /// *before* the most recently escrowed submission (it has not indexed
    /// the latest update yet). Healthy relays serve [`Relay::best_bid`].
    pub fn serve_header(&self) -> Option<&AcceptedBid> {
        match self.faults.health {
            Health::Down => None,
            Health::Degraded if self.faults.stale_response => {
                let stale = &self.pending[..self.pending.len().saturating_sub(1)];
                Self::best_of(stale)
            }
            _ => self.best_bid(),
        }
    }

    /// Samples this slot's delivery shortfall for a winning block:
    /// `Some(delivered)` strictly below the promise, or `None` for full
    /// delivery.
    pub fn sample_shortfall(&mut self, promised: Wei) -> Option<Wei> {
        if self.shortfall_prob > 0.0 && self.rng.random::<f64>() < self.shortfall_prob {
            let keep = 1.0 - self.shortfall_frac.clamp(0.0, 1.0);
            let delivered = promised.mul_ratio((keep * 1_000_000.0) as u128, 1_000_000);
            if delivered < promised {
                return Some(delivered);
            }
            // Round to at least 1 wei short so the record is a true shortfall.
            return Some(promised.saturating_sub(Wei(1)));
        }
        None
    }

    /// Clears per-slot escrow (both the one-shot list and the timed book).
    pub fn end_slot(&mut self) -> Vec<AcceptedBid> {
        self.book.clear();
        std::mem::take(&mut self.pending)
    }

    /// Registers a validator as subscribed.
    pub fn register_validator(&mut self, v: ValidatorId) {
        self.registered.insert(v);
    }

    /// Number of registered validators.
    pub fn registered_count(&self) -> usize {
        self.registered.len()
    }

    /// Serializes the relay's path-dependent state: validator
    /// registrations and the RNG stream. Escrow is empty at checkpoint
    /// boundaries (every auction ends with [`Relay::end_slot`]) and the
    /// static policy fields are rebuilt from the scenario config.
    pub fn write_dynamic(&self, w: &mut simcore::SnapWriter) {
        use simcore::Snapshot;
        assert!(
            self.pending.is_empty(),
            "relay escrow must be drained before checkpointing"
        );
        assert!(
            self.book.is_empty(),
            "relay bid book must be drained before checkpointing"
        );
        self.registered.encode(w);
        self.rng.encode(w);
    }

    /// Restores state written by [`Relay::write_dynamic`].
    pub fn read_dynamic(
        &mut self,
        r: &mut simcore::SnapReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        use simcore::Snapshot;
        self.registered = Snapshot::decode(r)?;
        self.rng = Snapshot::decode(r)?;
        self.pending.clear();
        self.book.clear();
        Ok(())
    }
}

/// The full relay registry.
#[derive(Debug)]
pub struct RelayRegistry {
    relays: Vec<Relay>,
}

impl RelayRegistry {
    /// Builds the paper's eleven relays with per-relay RNG streams.
    pub fn paper(seeds: &simcore::SeedDomain) -> Self {
        let relays = PAPER_RELAYS
            .iter()
            .enumerate()
            .map(|(i, info)| {
                Relay::new(
                    RelayId(i as u32),
                    info.clone(),
                    seeds.rng(&format!("relay:{}", info.name)),
                )
            })
            .collect();
        RelayRegistry { relays }
    }

    /// Number of relays.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// True if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Relay by id, or `None` when the id is out of range (ids from a
    /// foreign registry, hand-rolled configs).
    pub fn get(&self, id: RelayId) -> Option<&Relay> {
        self.relays.get(id.0 as usize)
    }

    /// Mutable relay by id, or `None` when the id is out of range.
    pub fn get_mut(&mut self, id: RelayId) -> Option<&mut Relay> {
        self.relays.get_mut(id.0 as usize)
    }

    /// Iterates over relays.
    pub fn iter(&self) -> impl Iterator<Item = &Relay> {
        self.relays.iter()
    }

    /// Mutable iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Relay> {
        self.relays.iter_mut()
    }

    /// Id of a relay by name (panics on unknown name — registry is static).
    pub fn id_by_name(&self, name: &str) -> RelayId {
        self.relays
            .iter()
            .find(|r| r.info.name == name)
            .map(|r| r.id)
            .unwrap_or_else(|| panic!("unknown relay {name}"))
    }

    /// Ids of all OFAC-compliant relays.
    pub fn censoring_ids(&self) -> Vec<RelayId> {
        self.relays
            .iter()
            .filter(|r| r.info.ofac_compliant)
            .map(|r| r.id)
            .collect()
    }

    /// Serializes every relay's dynamic state, prefixed with the relay
    /// count so a registry shape mismatch is caught at restore time.
    pub fn write_dynamic(&self, w: &mut simcore::SnapWriter) {
        use simcore::Snapshot;
        self.relays.len().encode(w);
        for relay in &self.relays {
            relay.write_dynamic(w);
        }
    }

    /// Restores state written by [`RelayRegistry::write_dynamic`] into a
    /// registry with the same static wiring.
    pub fn read_dynamic(
        &mut self,
        r: &mut simcore::SnapReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        use simcore::Snapshot;
        let n = usize::decode(r)?;
        if n != self.relays.len() {
            return Err(simcore::SnapshotError::Corrupt(format!(
                "checkpoint has {n} relays but the registry has {}",
                self.relays.len()
            )));
        }
        for relay in &mut self.relays {
            relay.read_dynamic(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SeedDomain;

    fn registry() -> RelayRegistry {
        RelayRegistry::paper(&SeedDomain::new(21))
    }

    fn submission(bid_eth: f64, true_eth: f64) -> Submission {
        Submission {
            slot: Slot(1),
            builder: BuilderId(0),
            pubkey: BlsPublicKey::derive("k"),
            declared_bid: Wei::from_eth(bid_eth),
            true_bid: Wei::from_eth(true_eth),
            sandwich_count: 0,
            flagged_by_blacklist: false,
        }
    }

    #[test]
    fn exact_bid_ties_go_to_the_lower_builder_id_then_arrival() {
        let mut reg = registry();
        let us = reg.id_by_name("UltraSound");
        let relay = reg.get_mut(us).unwrap();
        let mk = |builder: u32, key: &str| Submission {
            slot: Slot(1),
            builder: BuilderId(builder),
            pubkey: BlsPublicKey::derive(key),
            declared_bid: Wei::from_eth(1.0),
            true_bid: Wei::from_eth(1.0),
            sandwich_count: 0,
            flagged_by_blacklist: false,
        };
        let day = DayIndex(0);
        // Three builders, byte-identical bids, arrival order 3, 1, 2.
        assert!(relay.consider(mk(3, "key-a"), day));
        assert!(relay.consider(mk(1, "key-b"), day));
        assert!(relay.consider(mk(2, "key-c"), day));
        let best = relay.best_bid().expect("escrow is non-empty");
        assert_eq!(
            best.submission.builder,
            BuilderId(1),
            "the lowest BuilderId must win an exact tie, regardless of \
             arrival or pubkey order"
        );

        // Same builder twice at the same bid: the earlier arrival wins.
        relay.end_slot();
        assert!(relay.consider(mk(5, "first"), day));
        assert!(relay.consider(mk(5, "second"), day));
        let best = relay.best_bid().expect("escrow is non-empty");
        assert_eq!(best.submission.pubkey, BlsPublicKey::derive("first"));
    }

    #[test]
    fn registry_matches_table_2_and_3() {
        let reg = registry();
        assert_eq!(reg.len(), 11);
        let censoring: Vec<&str> = reg
            .iter()
            .filter(|r| r.info.ofac_compliant)
            .map(|r| r.info.name)
            .collect();
        assert_eq!(
            censoring,
            ["Blocknative", "bloXroute (R)", "Eden", "Flashbots"]
        );
        assert_eq!(
            reg.get(reg.id_by_name("Blocknative")).unwrap().info.fork,
            "Dreamboat"
        );
        let filtered: Vec<&str> = reg
            .iter()
            .filter(|r| r.info.mev_filter.is_some())
            .map(|r| r.info.name)
            .collect();
        assert_eq!(filtered, ["bloXroute (E)"]);
    }

    #[test]
    fn censoring_relays_get_blacklists_with_lag() {
        let reg = registry();
        for relay in reg.iter() {
            assert_eq!(relay.blacklist.is_some(), relay.info.ofac_compliant);
        }
    }

    #[test]
    fn permissionless_admits_everyone_restricted_does_not() {
        let mut reg = registry();
        let aestus = reg.id_by_name("Aestus");
        assert!(reg.get(aestus).unwrap().admits(BuilderId(42)));
        let eden = reg.id_by_name("Eden");
        reg.get_mut(eden).unwrap().allowed_builders = Some([BuilderId(7)].into_iter().collect());
        assert!(reg.get(eden).unwrap().admits(BuilderId(7)));
        assert!(!reg.get(eden).unwrap().admits(BuilderId(8)));
    }

    #[test]
    fn best_bid_wins_escrow() {
        let mut reg = registry();
        let id = reg.id_by_name("UltraSound");
        let relay = reg.get_mut(id).unwrap();
        assert!(relay.consider(submission(0.05, 0.05), DayIndex(0)));
        assert!(relay.consider(submission(0.09, 0.09), DayIndex(0)));
        assert!(relay.consider(submission(0.07, 0.07), DayIndex(0)));
        assert_eq!(
            relay.best_bid().unwrap().submission.declared_bid,
            Wei::from_eth(0.09)
        );
        assert_eq!(relay.end_slot().len(), 3);
        assert!(relay.best_bid().is_none());
    }

    #[test]
    fn verifying_relay_rejects_inflated_bids() {
        let mut reg = registry();
        let id = reg.id_by_name("Flashbots");
        let relay = reg.get_mut(id).unwrap();
        assert!(!relay.consider(submission(1.0, 0.1), DayIndex(0)));
        assert!(relay.consider(submission(0.1, 0.1), DayIndex(0)));
    }

    #[test]
    fn manifold_without_verification_accepts_inflated_bids() {
        let mut reg = registry();
        let id = reg.id_by_name("Manifold");
        reg.get_mut(id).unwrap().bid_verification_from = Some(DayIndex(31)); // fixed 16 Oct
        let relay = reg.get_mut(id).unwrap();
        assert!(relay.consider(submission(278.0, 0.1), DayIndex(10)));
        relay.end_slot();
        // After the fix the same submission bounces.
        assert!(!relay.consider(submission(278.0, 0.1), DayIndex(31)));
    }

    #[test]
    fn blacklist_flagged_submissions_are_censored() {
        let mut reg = registry();
        let id = reg.id_by_name("Flashbots");
        let relay = reg.get_mut(id).unwrap();
        let mut s = submission(0.1, 0.1);
        s.flagged_by_blacklist = true;
        assert!(!relay.consider(s, DayIndex(0)));
    }

    #[test]
    fn mev_filter_catches_most_but_not_all_sandwiches() {
        let mut reg = registry();
        let id = reg.id_by_name("bloXroute (E)");
        let relay = reg.get_mut(id).unwrap();
        let mut passed = 0;
        let n = 2000;
        for _ in 0..n {
            let mut s = submission(0.1, 0.1);
            s.sandwich_count = 1;
            if relay.consider(s, DayIndex(0)) {
                passed += 1;
            }
            relay.end_slot();
        }
        let rate = passed as f64 / n as f64;
        assert!(
            rate > 0.05 && rate < 0.30,
            "pass rate {rate} should be ~0.15"
        );
    }

    #[test]
    fn non_filtering_relays_pass_sandwiches() {
        let mut reg = registry();
        let id = reg.id_by_name("bloXroute (M)");
        let relay = reg.get_mut(id).unwrap();
        let mut s = submission(0.1, 0.1);
        s.sandwich_count = 3;
        assert!(relay.consider(s, DayIndex(0)));
    }

    #[test]
    fn shortfall_sampling_respects_probability() {
        let mut reg = registry();
        let id = reg.id_by_name("GnosisDAO");
        let relay = reg.get_mut(id).unwrap();
        relay.shortfall_prob = 0.25;
        relay.shortfall_frac = 0.02;
        let mut shortfalls = 0;
        for _ in 0..4000 {
            if let Some(delivered) = relay.sample_shortfall(Wei::from_eth(0.1)) {
                assert!(delivered < Wei::from_eth(0.1));
                shortfalls += 1;
            }
        }
        let rate = shortfalls as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.04, "shortfall rate {rate}");
    }

    #[test]
    fn timed_book_serves_the_view_at_query_time() {
        let mut reg = registry();
        let id = reg.id_by_name("UltraSound");
        let relay = reg.get_mut(id).unwrap();
        let day = DayIndex(0);
        let deadline = SimTime::from_millis(12_000);
        assert!(relay.consider_timed(submission(0.05, 0.05), day, SimTime(1_000), deadline));
        assert!(relay.consider_timed(submission(0.09, 0.09), day, SimTime(8_000), deadline));
        // Before the second bid lands the view only holds the first.
        assert_eq!(
            relay
                .book_view_at(SimTime(5_000))
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.05)
        );
        assert_eq!(
            relay
                .book_view_at(SimTime(8_000))
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.09)
        );
        // A bid past the deadline never enters any view.
        assert!(!relay.consider_timed(submission(9.0, 9.0), day, SimTime(12_001), deadline));
        assert_eq!(
            relay
                .book_view_at(SimTime(u64::MAX))
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.09)
        );
        assert_eq!(relay.book_len(), 2);
        relay.end_slot();
        assert!(relay.book_view_at(SimTime(u64::MAX)).is_none());
    }

    #[test]
    fn cancellation_voids_the_bid_before_the_cutoff_only() {
        let mut reg = registry();
        let id = reg.id_by_name("UltraSound");
        let relay = reg.get_mut(id).unwrap();
        let day = DayIndex(0);
        let deadline = SimTime::from_millis(12_000);
        let cutoff = SimTime::from_millis(11_000);
        assert!(relay.consider_timed(submission(0.30, 0.30), day, SimTime(2_000), deadline));
        assert!(relay.consider_timed(submission(0.10, 0.10), day, SimTime(3_000), deadline));
        // Cancel the high bid in time: it vanishes from every view,
        // including views *before* the cancel arrived.
        assert!(relay.cancel_timed(BuilderId(0), Wei::from_eth(0.30), SimTime(6_000), cutoff));
        assert_eq!(
            relay
                .book_view_at(SimTime(2_500))
                .map(|b| b.submission.declared_bid),
            None,
            "a cancelled bid must never appear in any view"
        );
        assert_eq!(
            relay
                .book_view_at(SimTime(12_000))
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.10)
        );
        // A cancel after the cutoff is ignored — the bid stands.
        assert!(!relay.cancel_timed(BuilderId(0), Wei::from_eth(0.10), SimTime(11_001), cutoff));
        assert_eq!(
            relay
                .book_view_at(SimTime(12_000))
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.10)
        );
        // Cancelling a bid that was never booked is a no-op.
        assert!(!relay.cancel_timed(BuilderId(0), Wei::from_eth(7.0), SimTime(6_000), cutoff));
    }

    #[test]
    fn degraded_stale_relay_serves_the_lagged_view() {
        // Regression (PR 7): under sub-slot time a degraded stale relay
        // must serve its view as of `now - staleness_lag`, not one fixed
        // stale snapshot per slot.
        let mut reg = registry();
        let id = reg.id_by_name("UltraSound");
        let relay = reg.get_mut(id).unwrap();
        let day = DayIndex(0);
        let deadline = SimTime::from_millis(12_000);
        assert!(relay.consider_timed(submission(0.05, 0.05), day, SimTime(1_000), deadline));
        assert!(relay.consider_timed(submission(0.09, 0.09), day, SimTime(10_500), deadline));
        relay.faults = ComponentFaults {
            health: Health::Degraded,
            stale_response: true,
            ..ComponentFaults::default()
        };
        // Query at 12s with a 2s lag: the view as of 10s predates the
        // second bid, so the stale relay still serves 0.05 ETH…
        assert_eq!(
            relay
                .serve_header_at(SimTime(12_000), 2_000)
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.05)
        );
        // …while the lag window sliding past the bid's arrival brings the
        // served view up to date — the lag is relative to `now`, never a
        // fixed per-slot snapshot.
        assert_eq!(
            relay
                .serve_header_at(SimTime(12_600), 2_000)
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.09)
        );
        // Healthy serving at query time; down serves nothing.
        relay.faults = ComponentFaults::default();
        assert_eq!(
            relay
                .serve_header_at(SimTime(12_000), 2_000)
                .unwrap()
                .submission
                .declared_bid,
            Wei::from_eth(0.09)
        );
        relay.faults.health = Health::Down;
        assert!(relay.serve_header_at(SimTime(12_000), 2_000).is_none());
    }

    #[test]
    fn validator_registration_counts() {
        let mut reg = registry();
        let id = reg.id_by_name("Aestus");
        let relay = reg.get_mut(id).unwrap();
        relay.register_validator(ValidatorId(1));
        relay.register_validator(ValidatorId(2));
        relay.register_validator(ValidatorId(1));
        assert_eq!(relay.registered_count(), 2);
    }
}
