//! Intra-slot auction timing: bid strategies and latency geometry.
//!
//! The one-shot auction compresses the 12-second slot into a single
//! instant; this module carries everything the streamed model adds on
//! top — which strategy each builder plays, how far (in milliseconds)
//! each builder sits from each relay, and the slot-level timing policies
//! (bid deadline, cancellation cutoff, header-query instant). All of it
//! is drawn once per run from the scenario's seed domain, so the timed
//! auction stays exactly as deterministic as the legacy one.

use crate::builder::BuilderId;
use crate::relay::RelayId;
use eth_types::Wei;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{
    build_windows, in_window, LatencyChannel, SeedDomain, SnapReader, SnapWriter, Snapshot,
    SnapshotError, Windows,
};

/// The strategy family a builder plays, for records and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Periodic re-bids escalating toward the builder's full value.
    Naive,
    /// One last-moment bid sized just above the observed top of book.
    Sniper,
    /// Bid high early, cancel before the cutoff, rebid low.
    Canceller,
}

impl StrategyKind {
    /// Stable lowercase name for CSV artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Naive => "naive",
            StrategyKind::Sniper => "sniper",
            StrategyKind::Canceller => "canceller",
        }
    }
}

impl Snapshot for StrategyKind {
    fn encode(&self, w: &mut SnapWriter) {
        (match self {
            StrategyKind::Naive => 0u8,
            StrategyKind::Sniper => 1,
            StrategyKind::Canceller => 2,
        })
        .encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::decode(r)? {
            0 => StrategyKind::Naive,
            1 => StrategyKind::Sniper,
            2 => StrategyKind::Canceller,
            t => return Err(SnapshotError::Corrupt(format!("StrategyKind tag {t:#x}"))),
        })
    }
}

/// A builder's bid-stream strategy with its tuned parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidStrategy {
    /// Submit `rebids` bids spread over the slot, each capped by the
    /// value accrued at its send time. `rebids == 1` degenerates to the
    /// legacy one-shot submission at t=0.
    Naive {
        /// How many bids to spread over the slot (min 1).
        rebids: u32,
    },
    /// Send a single bid `lead_ms` before the eligibility deadline,
    /// priced just above the top of book the builder has observed.
    Sniper {
        /// How long before the deadline the bid leaves the builder.
        lead_ms: u64,
    },
    /// Bid the full target early, cancel mid-slot, rebid at
    /// `rebid_permille`/1000 of the target.
    Canceller {
        /// Final bid as a per-mille fraction of the full target.
        rebid_permille: u16,
    },
}

impl BidStrategy {
    /// The strategy family, for records.
    pub fn kind(&self) -> StrategyKind {
        match self {
            BidStrategy::Naive { .. } => StrategyKind::Naive,
            BidStrategy::Sniper { .. } => StrategyKind::Sniper,
            BidStrategy::Canceller { .. } => StrategyKind::Canceller,
        }
    }
}

impl Snapshot for BidStrategy {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            BidStrategy::Naive { rebids } => {
                0u8.encode(w);
                rebids.encode(w);
            }
            BidStrategy::Sniper { lead_ms } => {
                1u8.encode(w);
                lead_ms.encode(w);
            }
            BidStrategy::Canceller { rebid_permille } => {
                2u8.encode(w);
                (*rebid_permille as u32).encode(w);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::decode(r)? {
            0 => BidStrategy::Naive {
                rebids: Snapshot::decode(r)?,
            },
            1 => BidStrategy::Sniper {
                lead_ms: Snapshot::decode(r)?,
            },
            2 => BidStrategy::Canceller {
                rebid_permille: u32::decode(r)? as u16,
            },
            t => return Err(SnapshotError::Corrupt(format!("BidStrategy tag {t:#x}"))),
        })
    }
}

/// Run-level timing parameters for the streamed auction: policies plus
/// the per-builder strategy and latency tables (indexed by id).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Sampling spacing for the bid-escalation trace, in ms.
    pub tick_ms: u64,
    /// Bids arriving after this offset from slot start are ineligible.
    pub bid_deadline_ms: u64,
    /// Cancel messages arriving after this offset are ignored.
    pub cancel_cutoff_ms: u64,
    /// When the proposer queries `getHeader`, offset from slot start.
    pub header_query_ms: u64,
    /// How far behind `now` a degraded stale relay's view lags.
    pub staleness_lag_ms: u64,
    /// Fraction (permille) of a block's final value already extractable
    /// at slot start; the rest accrues quadratically toward the bid
    /// deadline (most MEV arrives late in the slot). 1000 disables
    /// accrual — the degenerate one-shot geometry.
    pub accrual_floor_permille: u64,
    /// One-way builder submission latency in ms, indexed by `BuilderId`.
    pub builder_latency_ms: Vec<u64>,
    /// Extra per-relay ingestion latency in ms, indexed by `RelayId`.
    pub relay_extra_ms: Vec<u64>,
    /// Each builder's strategy, indexed by `BuilderId`.
    pub strategies: Vec<BidStrategy>,
}

impl TimingParams {
    /// The strategy builder `b` plays (out-of-table builders bid once,
    /// like the legacy auction).
    pub fn strategy_for(&self, b: BuilderId) -> BidStrategy {
        self.strategies
            .get(b.0 as usize)
            .copied()
            .unwrap_or(BidStrategy::Naive { rebids: 1 })
    }

    /// Builder `b`'s one-way submission latency in ms.
    pub fn builder_latency(&self, b: BuilderId) -> u64 {
        self.builder_latency_ms
            .get(b.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The builder→relay latency channel: builder distance plus the
    /// relay's own ingestion delay.
    pub fn channel(&self, b: BuilderId, r: RelayId) -> LatencyChannel {
        let extra = self.relay_extra_ms.get(r.0 as usize).copied().unwrap_or(0);
        LatencyChannel {
            delay_ms: self.builder_latency(b) + extra,
        }
    }

    /// Fraction (permille) of a block's final value a bid sent `sent_ms`
    /// into the slot can commit to. Quartic in time: most extractable
    /// value (CEX–DEX arbitrage, late order flow) materialises in the
    /// final moments of the slot, which is exactly why last-moment
    /// bidding pays and why latency decides who can play it — every
    /// millisecond of channel delay pushes the send time, and the value
    /// ceiling, back down the steep end of this curve.
    pub fn accrual_permille(&self, sent_ms: u64) -> u128 {
        let floor = self.accrual_floor_permille.min(1000) as u128;
        let d = self.bid_deadline_ms.max(1) as u128;
        let t = sent_ms.min(self.bid_deadline_ms) as u128;
        floor + (1000 - floor) * t * t * t * t / (d * d * d * d)
    }

    /// `value` discounted to what a bid sent at `sent_ms` can commit to.
    pub fn accrued(&self, value: Wei, sent_ms: u64) -> Wei {
        value.mul_ratio(self.accrual_permille(sent_ms), 1000)
    }

    /// A degenerate parameter set: every builder bids once at t=0 over a
    /// zero-latency channel, with value accrual disabled. Used by the
    /// one-shot-equivalence property — this configuration must reproduce
    /// the legacy auction bid-for-bid.
    pub fn one_shot_degenerate(builders: usize, relays: usize) -> TimingParams {
        TimingParams {
            tick_ms: 1500,
            bid_deadline_ms: 12_000,
            cancel_cutoff_ms: 11_000,
            header_query_ms: 12_000,
            staleness_lag_ms: 2_000,
            accrual_floor_permille: 1000,
            builder_latency_ms: vec![0; builders],
            relay_extra_ms: vec![0; relays],
            strategies: vec![BidStrategy::Naive { rebids: 1 }; builders],
        }
    }
}

impl Snapshot for TimingParams {
    fn encode(&self, w: &mut SnapWriter) {
        self.tick_ms.encode(w);
        self.bid_deadline_ms.encode(w);
        self.cancel_cutoff_ms.encode(w);
        self.header_query_ms.encode(w);
        self.staleness_lag_ms.encode(w);
        self.accrual_floor_permille.encode(w);
        self.builder_latency_ms.encode(w);
        self.relay_extra_ms.encode(w);
        self.strategies.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TimingParams {
            tick_ms: Snapshot::decode(r)?,
            bid_deadline_ms: Snapshot::decode(r)?,
            cancel_cutoff_ms: Snapshot::decode(r)?,
            header_query_ms: Snapshot::decode(r)?,
            staleness_lag_ms: Snapshot::decode(r)?,
            accrual_floor_permille: Snapshot::decode(r)?,
            builder_latency_ms: Snapshot::decode(r)?,
            relay_extra_ms: Snapshot::decode(r)?,
            strategies: Snapshot::decode(r)?,
        })
    }
}

/// Chaos rates for the builder↔relay message fabric, in primitive units
/// so `pbs` stays independent of the scenario configuration types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultParams {
    /// Probability an individual bid or cancel message is silently lost.
    pub drop_prob: f64,
    /// Probability a message suffers a jitter burst on top of its
    /// channel delay.
    pub jitter_prob: f64,
    /// Maximum extra delay (ms) a jitter burst adds, drawn uniformly.
    pub jitter_max_ms: u64,
    /// Mean builder↔relay partition windows per day, per channel.
    pub partitions_per_day: f64,
    /// Mean partition length in slots.
    pub partition_mean_slots: f64,
}

impl NetFaultParams {
    /// True when every rate is zero — the fabric never misbehaves.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0 && self.jitter_prob == 0.0 && self.partitions_per_day == 0.0
    }
}

impl Snapshot for NetFaultParams {
    fn encode(&self, w: &mut SnapWriter) {
        self.drop_prob.encode(w);
        self.jitter_prob.encode(w);
        self.jitter_max_ms.encode(w);
        self.partitions_per_day.encode(w);
        self.partition_mean_slots.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NetFaultParams {
            drop_prob: Snapshot::decode(r)?,
            jitter_prob: Snapshot::decode(r)?,
            jitter_max_ms: Snapshot::decode(r)?,
            partitions_per_day: Snapshot::decode(r)?,
            partition_mean_slots: Snapshot::decode(r)?,
        })
    }
}

/// Seeded network-fault layout for a whole run: one partition-window
/// schedule per builder↔relay channel plus the constant drop/jitter
/// rates. Built once from a dedicated seed sub-domain, so the layout is
/// a pure function of the master seed and the chaos knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultSchedule {
    params: NetFaultParams,
    relays: u32,
    /// Partition windows, indexed `builder * relays + relay`.
    partitions: Vec<Windows>,
}

impl NetFaultSchedule {
    /// Lays out the schedule. `domain` should be a dedicated sub-domain
    /// (e.g. `seeds.subdomain("net_faults")`) so partition draws cannot
    /// collide with any other stream.
    pub fn build(
        domain: &SeedDomain,
        params: NetFaultParams,
        builders: u32,
        relays: u32,
        slots_per_day: u64,
        total_slots: u64,
    ) -> Self {
        let spd = slots_per_day.max(1);
        let mut partitions = Vec::with_capacity((builders * relays) as usize);
        for b in 0..builders {
            for r in 0..relays {
                let mut rng = domain.rng(&format!("partition:{b}:{r}"));
                partitions.push(build_windows(
                    &mut rng,
                    params.partitions_per_day,
                    params.partition_mean_slots,
                    spd,
                    total_slots,
                ));
            }
        }
        NetFaultSchedule {
            params,
            relays,
            partitions,
        }
    }

    /// Whether builder `b`'s channel to relay `r` is partitioned during
    /// `slot`. Out-of-table channels never partition.
    pub fn partitioned(&self, b: BuilderId, r: RelayId, slot: u64) -> bool {
        let idx = b.0 as usize * self.relays as usize + r.0 as usize;
        match self.partitions.get(idx) {
            Some(w) => in_window(w, slot),
            None => false,
        }
    }

    /// The per-slot chaos view the auction consumes: constant rates plus
    /// the partition predicate resolved for this slot.
    pub fn slot_view(&self, slot: u64) -> NetChaos {
        NetChaos {
            drop_prob: self.params.drop_prob,
            jitter_prob: self.params.jitter_prob,
            jitter_max_ms: self.params.jitter_max_ms,
            relays: self.relays,
            partitioned: self.partitions.iter().map(|w| in_window(w, slot)).collect(),
        }
    }
}

impl Snapshot for NetFaultSchedule {
    fn encode(&self, w: &mut SnapWriter) {
        self.params.encode(w);
        self.relays.encode(w);
        self.partitions.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NetFaultSchedule {
            params: Snapshot::decode(r)?,
            relays: Snapshot::decode(r)?,
            partitions: Snapshot::decode(r)?,
        })
    }
}

/// Network chaos resolved for one slot: rates plus a per-channel
/// partition bitmap. Message-level drop/jitter draws stay with the
/// caller so the auction controls exactly which RNG stream they come
/// from.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaos {
    /// Probability an individual message is silently lost.
    pub drop_prob: f64,
    /// Probability a message suffers a jitter burst.
    pub jitter_prob: f64,
    /// Maximum extra delay (ms) a jitter burst adds, drawn uniformly.
    pub jitter_max_ms: u64,
    relays: u32,
    partitioned: Vec<bool>,
}

impl NetChaos {
    /// Whether builder `b`'s channel to relay `r` is partitioned this
    /// slot.
    pub fn is_partitioned(&self, b: BuilderId, r: RelayId) -> bool {
        let idx = b.0 as usize * self.relays as usize + r.0 as usize;
        self.partitioned.get(idx).copied().unwrap_or(false)
    }

    /// Decides the fate of one message on builder `b`'s channel to relay
    /// `r`: `None` when the message is lost (partition or drop), else
    /// the extra jitter delay (ms) to add on top of the channel latency.
    ///
    /// Always draws the same number of randoms for a non-partitioned
    /// channel (one for drop, one for jitter, one for the jitter size
    /// when the burst fires), keeping downstream draws aligned across
    /// configs that differ only in whether a given message survives.
    pub fn message_fate(&self, b: BuilderId, r: RelayId, rng: &mut impl Rng) -> Option<u64> {
        if self.is_partitioned(b, r) {
            return None;
        }
        let dropped = rng.random::<f64>() < self.drop_prob;
        let jittered = rng.random::<f64>() < self.jitter_prob;
        let extra = if jittered && self.jitter_max_ms > 0 {
            rng.random_range(0..=self.jitter_max_ms)
        } else {
            0
        };
        if dropped {
            None
        } else {
            Some(extra)
        }
    }
}

/// One builder's chaos state for one slot, resolved by the driver from
/// the builder-tier fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BuilderChaos {
    /// The builder is down this slot and submits nothing.
    pub crashed: bool,
    /// Extra one-way latency (ms) added to every message the builder
    /// sends this slot.
    pub spike_ms: u64,
    /// When set, the builder is insolvent: its payment at `getPayload`
    /// falls short of the promised bid by this fraction.
    pub shortfall: Option<f64>,
}

/// Everything chaotic the auction needs to know about one slot. Absent
/// (`None` on [`crate::auction::SlotAuction`]) the auction behaves
/// exactly as before chaos existed — byte for byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlotChaos {
    /// Per-builder faults, indexed by `BuilderId`. Out-of-table builders
    /// are healthy.
    pub builders: Vec<BuilderChaos>,
    /// Network fabric faults, when the network tier is enabled.
    pub net: Option<NetChaos>,
}

impl SlotChaos {
    /// Builder `b`'s chaos state (healthy when out of table).
    pub fn builder(&self, b: BuilderId) -> BuilderChaos {
        self.builders.get(b.0 as usize).copied().unwrap_or_default()
    }
}

/// Per-slot timing trace the streamed auction attaches to its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuctionTimingTrace {
    /// Bid messages accepted into some relay's book.
    pub bids: u32,
    /// Cancellations that took effect (arrived before the cutoff and
    /// matched a live bid).
    pub cancels: u32,
    /// Bid messages that arrived after the eligibility deadline.
    pub late_bids: u32,
    /// Top declared bid across all relay books at each tick of the
    /// sampling grid (0, tick, 2·tick, … ≤ deadline).
    pub top_bid_by_tick: Vec<Wei>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_kinds_have_stable_names() {
        assert_eq!(StrategyKind::Naive.name(), "naive");
        assert_eq!(
            BidStrategy::Sniper { lead_ms: 200 }.kind(),
            StrategyKind::Sniper
        );
        assert_eq!(
            BidStrategy::Canceller {
                rebid_permille: 400
            }
            .kind(),
            StrategyKind::Canceller
        );
    }

    #[test]
    fn out_of_table_builders_fall_back_to_one_shot() {
        let tp = TimingParams::one_shot_degenerate(2, 3);
        assert_eq!(
            tp.strategy_for(BuilderId(9)),
            BidStrategy::Naive { rebids: 1 }
        );
        assert_eq!(tp.builder_latency(BuilderId(9)), 0);
        assert_eq!(tp.channel(BuilderId(9), RelayId(7)).delay_ms, 0);
    }

    #[test]
    fn accrual_is_quartic_between_floor_and_full() {
        let tp = TimingParams {
            accrual_floor_permille: 400,
            ..TimingParams::one_shot_degenerate(1, 1)
        };
        assert_eq!(tp.accrual_permille(0), 400);
        assert_eq!(tp.accrual_permille(6_000), 400 + 600 / 16);
        assert_eq!(tp.accrual_permille(12_000), 1000);
        // Past the deadline clamps; a floor of 1000 disables accrual.
        assert_eq!(tp.accrual_permille(20_000), 1000);
        let flat = TimingParams::one_shot_degenerate(1, 1);
        assert_eq!(flat.accrual_permille(0), 1000);
        assert_eq!(flat.accrued(Wei::from_gwei(7), 0), Wei::from_gwei(7));
    }

    fn stormy_net() -> NetFaultParams {
        NetFaultParams {
            drop_prob: 0.2,
            jitter_prob: 0.5,
            jitter_max_ms: 500,
            partitions_per_day: 40.0,
            partition_mean_slots: 6.0,
        }
    }

    #[test]
    fn inert_params_draw_no_partitions() {
        let inert = NetFaultParams {
            drop_prob: 0.0,
            jitter_prob: 0.0,
            jitter_max_ms: 700,
            partitions_per_day: 0.0,
            partition_mean_slots: 5.0,
        };
        assert!(inert.is_inert());
        assert!(!stormy_net().is_inert());
        let domain = SeedDomain::new(7).subdomain("net_faults");
        let sched = NetFaultSchedule::build(&domain, inert, 4, 3, 100, 1000);
        for slot in [0, 17, 999] {
            assert!(!sched.partitioned(BuilderId(1), RelayId(2), slot));
        }
    }

    #[test]
    fn partition_layout_is_deterministic_and_per_channel() {
        let domain = SeedDomain::new(9).subdomain("net_faults");
        let a = NetFaultSchedule::build(&domain, stormy_net(), 3, 2, 50, 500);
        let b = NetFaultSchedule::build(&domain, stormy_net(), 3, 2, 50, 500);
        assert_eq!(a, b);
        // With 40 windows/day over 10 days, at least one channel must
        // differ from another somewhere — channels are independent.
        let mut differs = false;
        for slot in 0..500 {
            if a.partitioned(BuilderId(0), RelayId(0), slot)
                != a.partitioned(BuilderId(2), RelayId(1), slot)
            {
                differs = true;
                break;
            }
        }
        assert!(differs, "independent channels never diverged");
        // Out-of-table channels never partition.
        assert!(!a.partitioned(BuilderId(9), RelayId(0), 0));
        // The slot view agrees with the schedule.
        let view = a.slot_view(123);
        for bi in 0..3u32 {
            for ri in 0..2u32 {
                assert_eq!(
                    view.is_partitioned(BuilderId(bi), RelayId(ri)),
                    a.partitioned(BuilderId(bi), RelayId(ri), 123)
                );
            }
        }
    }

    #[test]
    fn message_fate_draws_are_aligned() {
        let domain = SeedDomain::new(11).subdomain("net_faults");
        let sched = NetFaultSchedule::build(&domain, stormy_net(), 2, 2, 50, 500);
        let view = sched.slot_view(3);
        // Same RNG stream → same fate sequence.
        let mut r1 = domain.rng("msgs");
        let mut r2 = domain.rng("msgs");
        for _ in 0..200 {
            assert_eq!(
                view.message_fate(BuilderId(0), RelayId(1), &mut r1),
                view.message_fate(BuilderId(0), RelayId(1), &mut r2)
            );
        }
        // A partitioned channel consumes no randomness.
        let mut part = view.clone();
        part.partitioned = vec![true; 4];
        let mut r3 = domain.rng("probe");
        assert_eq!(part.message_fate(BuilderId(0), RelayId(0), &mut r3), None);
        let mut r4 = domain.rng("probe");
        let a: u64 = r3.random();
        let b: u64 = r4.random();
        assert_eq!(a, b, "partitioned fate advanced the RNG");
    }

    #[test]
    fn net_fault_schedule_round_trips_through_snapshot() {
        let domain = SeedDomain::new(13).subdomain("net_faults");
        let sched = NetFaultSchedule::build(&domain, stormy_net(), 3, 4, 50, 300);
        let mut w = SnapWriter::new();
        sched.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = NetFaultSchedule::decode(&mut r).unwrap();
        assert_eq!(sched, back);
    }

    #[test]
    fn slot_chaos_defaults_to_healthy() {
        let chaos = SlotChaos {
            builders: vec![
                BuilderChaos {
                    crashed: true,
                    ..BuilderChaos::default()
                },
                BuilderChaos {
                    spike_ms: 900,
                    shortfall: Some(0.35),
                    ..BuilderChaos::default()
                },
            ],
            net: None,
        };
        assert!(chaos.builder(BuilderId(0)).crashed);
        assert_eq!(chaos.builder(BuilderId(1)).spike_ms, 900);
        assert_eq!(chaos.builder(BuilderId(7)), BuilderChaos::default());
    }

    #[test]
    fn channel_sums_builder_and_relay_latency() {
        let tp = TimingParams {
            builder_latency_ms: vec![100, 20],
            relay_extra_ms: vec![5, 40],
            ..TimingParams::one_shot_degenerate(2, 2)
        };
        assert_eq!(tp.channel(BuilderId(0), RelayId(1)).delay_ms, 140);
        assert_eq!(tp.channel(BuilderId(1), RelayId(0)).delay_ms, 25);
    }
}
