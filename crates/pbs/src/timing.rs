//! Intra-slot auction timing: bid strategies and latency geometry.
//!
//! The one-shot auction compresses the 12-second slot into a single
//! instant; this module carries everything the streamed model adds on
//! top — which strategy each builder plays, how far (in milliseconds)
//! each builder sits from each relay, and the slot-level timing policies
//! (bid deadline, cancellation cutoff, header-query instant). All of it
//! is drawn once per run from the scenario's seed domain, so the timed
//! auction stays exactly as deterministic as the legacy one.

use crate::builder::BuilderId;
use crate::relay::RelayId;
use eth_types::Wei;
use serde::{Deserialize, Serialize};
use simcore::{LatencyChannel, SnapReader, SnapWriter, Snapshot, SnapshotError};

/// The strategy family a builder plays, for records and analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrategyKind {
    /// Periodic re-bids escalating toward the builder's full value.
    Naive,
    /// One last-moment bid sized just above the observed top of book.
    Sniper,
    /// Bid high early, cancel before the cutoff, rebid low.
    Canceller,
}

impl StrategyKind {
    /// Stable lowercase name for CSV artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Naive => "naive",
            StrategyKind::Sniper => "sniper",
            StrategyKind::Canceller => "canceller",
        }
    }
}

impl Snapshot for StrategyKind {
    fn encode(&self, w: &mut SnapWriter) {
        (match self {
            StrategyKind::Naive => 0u8,
            StrategyKind::Sniper => 1,
            StrategyKind::Canceller => 2,
        })
        .encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::decode(r)? {
            0 => StrategyKind::Naive,
            1 => StrategyKind::Sniper,
            2 => StrategyKind::Canceller,
            t => return Err(SnapshotError::Corrupt(format!("StrategyKind tag {t:#x}"))),
        })
    }
}

/// A builder's bid-stream strategy with its tuned parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BidStrategy {
    /// Submit `rebids` bids spread over the slot, each capped by the
    /// value accrued at its send time. `rebids == 1` degenerates to the
    /// legacy one-shot submission at t=0.
    Naive {
        /// How many bids to spread over the slot (min 1).
        rebids: u32,
    },
    /// Send a single bid `lead_ms` before the eligibility deadline,
    /// priced just above the top of book the builder has observed.
    Sniper {
        /// How long before the deadline the bid leaves the builder.
        lead_ms: u64,
    },
    /// Bid the full target early, cancel mid-slot, rebid at
    /// `rebid_permille`/1000 of the target.
    Canceller {
        /// Final bid as a per-mille fraction of the full target.
        rebid_permille: u16,
    },
}

impl BidStrategy {
    /// The strategy family, for records.
    pub fn kind(&self) -> StrategyKind {
        match self {
            BidStrategy::Naive { .. } => StrategyKind::Naive,
            BidStrategy::Sniper { .. } => StrategyKind::Sniper,
            BidStrategy::Canceller { .. } => StrategyKind::Canceller,
        }
    }
}

impl Snapshot for BidStrategy {
    fn encode(&self, w: &mut SnapWriter) {
        match self {
            BidStrategy::Naive { rebids } => {
                0u8.encode(w);
                rebids.encode(w);
            }
            BidStrategy::Sniper { lead_ms } => {
                1u8.encode(w);
                lead_ms.encode(w);
            }
            BidStrategy::Canceller { rebid_permille } => {
                2u8.encode(w);
                (*rebid_permille as u32).encode(w);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match u8::decode(r)? {
            0 => BidStrategy::Naive {
                rebids: Snapshot::decode(r)?,
            },
            1 => BidStrategy::Sniper {
                lead_ms: Snapshot::decode(r)?,
            },
            2 => BidStrategy::Canceller {
                rebid_permille: u32::decode(r)? as u16,
            },
            t => return Err(SnapshotError::Corrupt(format!("BidStrategy tag {t:#x}"))),
        })
    }
}

/// Run-level timing parameters for the streamed auction: policies plus
/// the per-builder strategy and latency tables (indexed by id).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    /// Sampling spacing for the bid-escalation trace, in ms.
    pub tick_ms: u64,
    /// Bids arriving after this offset from slot start are ineligible.
    pub bid_deadline_ms: u64,
    /// Cancel messages arriving after this offset are ignored.
    pub cancel_cutoff_ms: u64,
    /// When the proposer queries `getHeader`, offset from slot start.
    pub header_query_ms: u64,
    /// How far behind `now` a degraded stale relay's view lags.
    pub staleness_lag_ms: u64,
    /// Fraction (permille) of a block's final value already extractable
    /// at slot start; the rest accrues quadratically toward the bid
    /// deadline (most MEV arrives late in the slot). 1000 disables
    /// accrual — the degenerate one-shot geometry.
    pub accrual_floor_permille: u64,
    /// One-way builder submission latency in ms, indexed by `BuilderId`.
    pub builder_latency_ms: Vec<u64>,
    /// Extra per-relay ingestion latency in ms, indexed by `RelayId`.
    pub relay_extra_ms: Vec<u64>,
    /// Each builder's strategy, indexed by `BuilderId`.
    pub strategies: Vec<BidStrategy>,
}

impl TimingParams {
    /// The strategy builder `b` plays (out-of-table builders bid once,
    /// like the legacy auction).
    pub fn strategy_for(&self, b: BuilderId) -> BidStrategy {
        self.strategies
            .get(b.0 as usize)
            .copied()
            .unwrap_or(BidStrategy::Naive { rebids: 1 })
    }

    /// Builder `b`'s one-way submission latency in ms.
    pub fn builder_latency(&self, b: BuilderId) -> u64 {
        self.builder_latency_ms
            .get(b.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// The builder→relay latency channel: builder distance plus the
    /// relay's own ingestion delay.
    pub fn channel(&self, b: BuilderId, r: RelayId) -> LatencyChannel {
        let extra = self.relay_extra_ms.get(r.0 as usize).copied().unwrap_or(0);
        LatencyChannel {
            delay_ms: self.builder_latency(b) + extra,
        }
    }

    /// Fraction (permille) of a block's final value a bid sent `sent_ms`
    /// into the slot can commit to. Quartic in time: most extractable
    /// value (CEX–DEX arbitrage, late order flow) materialises in the
    /// final moments of the slot, which is exactly why last-moment
    /// bidding pays and why latency decides who can play it — every
    /// millisecond of channel delay pushes the send time, and the value
    /// ceiling, back down the steep end of this curve.
    pub fn accrual_permille(&self, sent_ms: u64) -> u128 {
        let floor = self.accrual_floor_permille.min(1000) as u128;
        let d = self.bid_deadline_ms.max(1) as u128;
        let t = sent_ms.min(self.bid_deadline_ms) as u128;
        floor + (1000 - floor) * t * t * t * t / (d * d * d * d)
    }

    /// `value` discounted to what a bid sent at `sent_ms` can commit to.
    pub fn accrued(&self, value: Wei, sent_ms: u64) -> Wei {
        value.mul_ratio(self.accrual_permille(sent_ms), 1000)
    }

    /// A degenerate parameter set: every builder bids once at t=0 over a
    /// zero-latency channel, with value accrual disabled. Used by the
    /// one-shot-equivalence property — this configuration must reproduce
    /// the legacy auction bid-for-bid.
    pub fn one_shot_degenerate(builders: usize, relays: usize) -> TimingParams {
        TimingParams {
            tick_ms: 1500,
            bid_deadline_ms: 12_000,
            cancel_cutoff_ms: 11_000,
            header_query_ms: 12_000,
            staleness_lag_ms: 2_000,
            accrual_floor_permille: 1000,
            builder_latency_ms: vec![0; builders],
            relay_extra_ms: vec![0; relays],
            strategies: vec![BidStrategy::Naive { rebids: 1 }; builders],
        }
    }
}

impl Snapshot for TimingParams {
    fn encode(&self, w: &mut SnapWriter) {
        self.tick_ms.encode(w);
        self.bid_deadline_ms.encode(w);
        self.cancel_cutoff_ms.encode(w);
        self.header_query_ms.encode(w);
        self.staleness_lag_ms.encode(w);
        self.accrual_floor_permille.encode(w);
        self.builder_latency_ms.encode(w);
        self.relay_extra_ms.encode(w);
        self.strategies.encode(w);
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TimingParams {
            tick_ms: Snapshot::decode(r)?,
            bid_deadline_ms: Snapshot::decode(r)?,
            cancel_cutoff_ms: Snapshot::decode(r)?,
            header_query_ms: Snapshot::decode(r)?,
            staleness_lag_ms: Snapshot::decode(r)?,
            accrual_floor_permille: Snapshot::decode(r)?,
            builder_latency_ms: Snapshot::decode(r)?,
            relay_extra_ms: Snapshot::decode(r)?,
            strategies: Snapshot::decode(r)?,
        })
    }
}

/// Per-slot timing trace the streamed auction attaches to its result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuctionTimingTrace {
    /// Bid messages accepted into some relay's book.
    pub bids: u32,
    /// Cancellations that took effect (arrived before the cutoff and
    /// matched a live bid).
    pub cancels: u32,
    /// Bid messages that arrived after the eligibility deadline.
    pub late_bids: u32,
    /// Top declared bid across all relay books at each tick of the
    /// sampling grid (0, tick, 2·tick, … ≤ deadline).
    pub top_bid_by_tick: Vec<Wei>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_kinds_have_stable_names() {
        assert_eq!(StrategyKind::Naive.name(), "naive");
        assert_eq!(
            BidStrategy::Sniper { lead_ms: 200 }.kind(),
            StrategyKind::Sniper
        );
        assert_eq!(
            BidStrategy::Canceller {
                rebid_permille: 400
            }
            .kind(),
            StrategyKind::Canceller
        );
    }

    #[test]
    fn out_of_table_builders_fall_back_to_one_shot() {
        let tp = TimingParams::one_shot_degenerate(2, 3);
        assert_eq!(
            tp.strategy_for(BuilderId(9)),
            BidStrategy::Naive { rebids: 1 }
        );
        assert_eq!(tp.builder_latency(BuilderId(9)), 0);
        assert_eq!(tp.channel(BuilderId(9), RelayId(7)).delay_ms, 0);
    }

    #[test]
    fn accrual_is_quartic_between_floor_and_full() {
        let tp = TimingParams {
            accrual_floor_permille: 400,
            ..TimingParams::one_shot_degenerate(1, 1)
        };
        assert_eq!(tp.accrual_permille(0), 400);
        assert_eq!(tp.accrual_permille(6_000), 400 + 600 / 16);
        assert_eq!(tp.accrual_permille(12_000), 1000);
        // Past the deadline clamps; a floor of 1000 disables accrual.
        assert_eq!(tp.accrual_permille(20_000), 1000);
        let flat = TimingParams::one_shot_degenerate(1, 1);
        assert_eq!(flat.accrual_permille(0), 1000);
        assert_eq!(flat.accrued(Wei::from_gwei(7), 0), Wei::from_gwei(7));
    }

    #[test]
    fn channel_sums_builder_and_relay_latency() {
        let tp = TimingParams {
            builder_latency_ms: vec![100, 20],
            relay_extra_ms: vec![5, 40],
            ..TimingParams::one_shot_degenerate(2, 2)
        };
        assert_eq!(tp.channel(BuilderId(0), RelayId(1)).delay_ms, 140);
        assert_eq!(tp.channel(BuilderId(1), RelayId(0)).delay_ms, 25);
    }
}
