//! Proposer-Builder Separation — the paper's subject (§2.2, §4–6).
//!
//! Implements the full PBS mechanism as deployed during the opt-in phase:
//!
//! * [`builder`] — specialized block builders with distinct margin, subsidy
//!   and order-flow profiles (the Table 5 / Figure 11 cast),
//! * [`relay`] — the eleven relays of Table 2/3 with their builder-
//!   connection policies, OFAC compliance, MEV filtering, and the
//!   documented misbehaviours (Manifold's missing bid verification, the
//!   Eden block-15,703,347 under-delivery),
//! * [`ofac`] — the time-varying sanctions list and the relays' *lagged*
//!   blacklist copies that explain the paper's censorship-gap findings,
//! * [`boost`] — the validator-side MEV-Boost client: relay subscriptions,
//!   blinded-header selection, signing, and local-build fallback,
//! * [`auction`] — the per-slot orchestration tying it all together and
//!   emitting the records the measurement pipeline crawls,
//! * [`timing`] — the streamed-auction extension: bid strategies,
//!   builder→relay latency geometry, and sub-slot timing policies.

pub mod auction;
pub mod boost;
pub mod builder;
pub mod ofac;
pub mod relay;
pub mod timing;

pub use auction::{SlotAuction, SlotResult, SubmissionRecord};
pub use boost::{
    BoostEvent, BreakerBank, BreakerPolicy, BreakerState, BreakerTransition, LocalBuilder,
    MevBoostClient, ProposeReport, RetryPolicy, SlotBudget, TimedQuery,
};
pub use builder::{
    with_slot_tables, BuildInputs, Builder, BuilderId, BuilderProfile, BuiltBlock, MarginPolicy,
    SubsidyPolicy,
};
pub use ofac::{
    block_touches_sanctioned, tx_touches_sanctioned, tx_touches_sanctioned_on, CensorDelta,
    CensorScan, RelayBlacklist, SanctionsList, TRON_SANCTIONED_FROM,
};
pub use relay::{
    BookEntry, BuilderPolicy, Relay, RelayId, RelayRegistry, RelayStaticInfo, Submission,
    PAPER_RELAYS,
};
pub use timing::{
    AuctionTimingTrace, BidStrategy, BuilderChaos, NetChaos, NetFaultParams, NetFaultSchedule,
    SlotChaos, StrategyKind, TimingParams,
};
