//! The per-slot PBS auction (paper §2.2, Figure 2).
//!
//! One slot, end to end: every builder assembles its best block from the
//! public mempool plus the bundles routed to it, submits (with per-relay
//! bid decay, so the same builder rarely posts the identical bid
//! everywhere — the source of the ~5% multi-relay blocks), relays apply
//! their policies (censorship with lagged blacklists, MEV filtering, bid
//! verification), and the proposer's MEV-Boost client signs the best
//! header. Validators without MEV-Boost — or left without bids — build
//! locally with naive gas-price ordering.

use crate::boost::{BoostEvent, LocalBuilder, MevBoostClient, TimedQuery};
use crate::builder::{BuildInputs, Builder, BuilderId, BuiltBlock};
use crate::ofac::{tx_touches_sanctioned, CensorScan, SanctionsList};
use crate::relay::{RelayId, RelayRegistry, Submission};
use crate::timing::{AuctionTimingTrace, BidStrategy, SlotChaos, TimingParams};
use eth_types::{Address, BlsPublicKey, DayIndex, Gas, GasPrice, Slot, Transaction, Wei};
use execution::Mempool;
use mev::Bundle;
use rand::Rng;
use rayon::prelude::*;
use simcore::{telemetry, SeedDomain, SimTime, TickGrid};

/// Static per-slot auction parameters.
#[derive(Debug, Clone)]
pub struct SlotAuction<'a> {
    /// The slot being auctioned.
    pub slot: Slot,
    /// Calendar day (drives blacklist lag and incident windows).
    pub day: DayIndex,
    /// Base fee in force.
    pub base_fee: GasPrice,
    /// Block gas limit.
    pub gas_limit: Gas,
    /// The authoritative sanctions list.
    pub sanctions: &'a SanctionsList,
    /// Probability a relay submission carries the builder's exact bid
    /// (otherwise a small decay applies).
    pub jitter_zero_prob: f64,
    /// Maximum relative bid decay when jitter applies.
    pub jitter_max_frac: f64,
    /// Streamed-auction timing parameters. `None` runs the legacy
    /// one-shot submission phase, byte-identical to pre-timing builds.
    pub timing: Option<&'a TimingParams>,
    /// This slot's resolved chaos state (builder crashes, latency
    /// spikes, insolvency, network faults). `None` — the default for
    /// every chaos-off run — reproduces the pre-chaos auction byte for
    /// byte and draws zero extra randomness.
    pub chaos: Option<&'a SlotChaos>,
}

/// One builder→relay submission, as the relay-data crawl would record it.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionRecord {
    /// Receiving relay.
    pub relay: RelayId,
    /// Submitting builder.
    pub builder: BuilderId,
    /// Submission key.
    pub pubkey: BlsPublicKey,
    /// Declared bid.
    pub declared_bid: Wei,
    /// Whether the relay accepted it into escrow.
    pub accepted: bool,
}

/// Everything a resolved slot produces.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotResult {
    /// Final ordered transactions (payment tx appended for PBS blocks).
    pub txs: Vec<Transaction>,
    /// The block's fee recipient (builder address under PBS, else the
    /// proposer's own).
    pub fee_recipient: Address,
    /// Whether the block went through PBS.
    pub pbs: bool,
    /// Winning builder (PBS only).
    pub builder: Option<BuilderId>,
    /// Winning submission key (PBS only).
    pub pubkey: Option<BlsPublicKey>,
    /// Relays that carried the winning bid (PBS only; >1 = multi-relay).
    pub winning_relays: Vec<RelayId>,
    /// Value promised to the proposer in the blinded header.
    pub promised: Wei,
    /// Value actually delivered by the payment transaction.
    pub delivered: Wei,
    /// Bundles of each MEV kind merged into the winning block
    /// (sandwich, arbitrage, liquidation).
    pub bundle_counts: [usize; 3],
    /// Every submission any relay received this slot.
    pub submissions: Vec<SubmissionRecord>,
    /// A header was signed but no carrying relay delivered the payload —
    /// the slot produces no block at all.
    pub missed: bool,
    /// The MEV-Boost client's decision trail (empty without a client; only
    /// the trivial signed/delivered pair when every relay is healthy).
    pub events: Vec<BoostEvent>,
    /// Sub-slot timing trace (streamed auctions only).
    pub timing: Option<AuctionTimingTrace>,
    /// Bid/cancel messages lost to network chaos (drop or partition),
    /// in generation order. Always empty without network chaos.
    pub lost_messages: Vec<(BuilderId, RelayId)>,
}

/// A builder's fully-assembled slot candidate, produced by the parallel
/// build phase: the block itself plus the pre-computed bid variant for
/// every relay the builder submits to (censoring relays get the filtered
/// block's bid). Owning all of it — no borrows of the builder table —
/// lets the sequential submission phase mutate relays freely.
struct Candidate {
    built: BuiltBlock,
    pubkey: BlsPublicKey,
    /// One censorship scan of `built`, shared by every censoring relay's
    /// variant; `None` when no subscribed relay censors. Kept alive so
    /// the propose phase can materialize the winning variant without
    /// rescanning the block.
    scan: Option<CensorScan>,
    /// `(relay, pre-jitter bid, variant value, sandwich count)` in
    /// profile order. The value is the margin-free ceiling a streamed
    /// sniper can escalate a contested bid up to.
    relay_variants: Vec<(RelayId, Wei, Wei, usize)>,
}

/// One message on a builder→relay wire in the streamed auction.
#[derive(Debug, Clone, Copy)]
enum TimedMessage {
    /// A bid submission.
    Bid {
        relay: RelayId,
        builder: BuilderId,
        pubkey: BlsPublicKey,
        declared: Wei,
        true_bid: Wei,
        sandwiches: usize,
    },
    /// A cancellation of this builder's bid with the given declared value.
    Cancel {
        relay: RelayId,
        builder: BuilderId,
        declared: Wei,
    },
}

impl<'a> SlotAuction<'a> {
    /// Runs the auction.
    ///
    /// `bundles_per_builder[i]` are the bundles routed to `builders[i]`
    /// (order-flow access is the caller's policy). `dishonest_bid` makes
    /// one builder declare an inflated bid to *non-verifying* relays — the
    /// Manifold exploit of 15 Oct 2022.
    ///
    /// The auction is split into a data-parallel and a sequential half:
    ///
    /// 1. **Build (parallel)** — each builder assembles its candidate block
    ///    and the censored per-relay variants from shared immutable state,
    ///    drawing randomness from `seeds.stream("build", builder_id)`, so
    ///    the result is a pure function of (seed domain, inputs) and cannot
    ///    depend on thread scheduling.
    /// 2. **Submit (sequential)** — candidates are consumed in ascending
    ///    `BuilderId` order: bid jitter is drawn from the single
    ///    `seeds.rng("jitter")` stream and relays observe submissions in a
    ///    stable order, which keeps relay escrow state byte-identical
    ///    across thread counts.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        builders: &mut [Builder],
        bundles_per_builder: &[Vec<Bundle>],
        public_mempool: &[Transaction],
        relays: &mut RelayRegistry,
        client: Option<&MevBoostClient>,
        proposer_fee_recipient: Address,
        proposer_mempool: &Mempool,
        direct_to_proposer: &[Transaction],
        seeds: &SeedDomain,
        dishonest_bid: Option<(BuilderId, Wei)>,
    ) -> SlotResult {
        assert_eq!(builders.len(), bundles_per_builder.len());

        // 1. Build phase: every builder assembles its candidate and the
        // per-relay censored variants in parallel. Builders pre-filter for
        // censoring relays using the relay's *published* (lagged)
        // blacklist — the mechanism behind the update-day leaks the paper
        // finds (§6).
        let builders_ro: &[Builder] = builders;
        let relays_ro: &RelayRegistry = relays;
        let indices: Vec<usize> = (0..builders_ro.len()).collect();
        let build_span = simcore::span!("auction.build_candidates");
        // The mempool lookup index and density fill order are identical
        // for every builder of the slot (same view, same base fee):
        // compute them once here — in arena-pooled buffers — and share
        // them across the parallel builds instead of sorting the same
        // transactions per builder.
        let candidates: Vec<Candidate> = crate::builder::with_slot_tables(
            public_mempool,
            self.base_fee,
            |mempool_index, density_order| {
                indices
                    .par_iter()
                    .map(|&bi| {
                        let builder = &builders_ro[bi];
                        let mut build_rng = seeds.stream("build", builder.id.0 as u64);
                        let built = builder.build_shared(
                            &BuildInputs {
                                base_fee: self.base_fee,
                                gas_limit: self.gas_limit,
                                mempool: public_mempool,
                                bundles: &bundles_per_builder[bi],
                            },
                            mempool_index,
                            density_order,
                            &mut build_rng,
                        );
                        let honest_bid = built.bid(builder.margin_on(built.value));
                        // The block is scanned once; each censoring relay's bid
                        // is then settled by delta (removed value only), and
                        // relays sharing the same blacklist view (lag +
                        // staleness cutoff) share one delta. Nothing censored is
                        // materialized here — only the winning variant is, in
                        // the propose phase.
                        let mut scan: Option<CensorScan> = None;
                        let mut views: Vec<(Option<&crate::ofac::RelayBlacklist>, Wei, Wei)> =
                            Vec::new();
                        let relay_variants = builder
                            .profile
                            .relays
                            .iter()
                            .filter_map(|&rid| {
                                // Unknown relay ids in a profile are skipped, not
                                // indexed blind.
                                let relay = relays_ro.get(rid)?;
                                Some(if relay.info.ofac_compliant {
                                    let scan = scan.get_or_insert_with(|| {
                                        CensorScan::of(&built.txs, self.base_fee, self.sanctions)
                                    });
                                    let view = relay.blacklist.as_ref();
                                    let (bid, value) = match views.iter().find(|(v, ..)| *v == view)
                                    {
                                        Some(&(_, bid, value)) => {
                                            telemetry::counter_add(
                                                "pbs.auction.variant.view_reused",
                                                1,
                                            );
                                            (bid, value)
                                        }
                                        None => {
                                            let delta = scan.delta(view, self.day);
                                            let value = built.value.saturating_sub(delta.value);
                                            let bid = built.bid_at(value, builder.margin_on(value));
                                            telemetry::counter_add(
                                                "pbs.auction.variant.incremental",
                                                1,
                                            );
                                            views.push((view, bid, value));
                                            (bid, value)
                                        }
                                    };
                                    // Censoring strips transactions, never whole
                                    // bundles from the count: `censored_variant`
                                    // keeps `bundle_counts`, so the declared
                                    // sandwich count is the base block's.
                                    (rid, bid, value, built.bundle_counts[0])
                                } else {
                                    (rid, honest_bid, built.value, built.bundle_counts[0])
                                })
                            })
                            .collect();
                        Candidate {
                            built,
                            pubkey: builder.pubkey_for_slot(self.slot),
                            scan,
                            relay_variants,
                        }
                    })
                    .collect()
            },
        );

        drop(build_span);
        telemetry::counter_add("pbs.auction.slots", 1);
        telemetry::counter_add("pbs.auction.candidates_built", candidates.len() as u64);

        // 2. Submission phase: sequential, in ascending builder order, so
        // every jitter draw and relay state transition happens in the same
        // order no matter how phase 1 was scheduled. The streamed path
        // replays the exact same jitter draws to settle per-relay bid
        // targets, then spreads the submissions over sub-slot time.
        let submit_span = simcore::span!("auction.submit");
        let mut jitter_rng = seeds.rng("jitter");
        // Message-level network-fault draws come from their own labeled
        // stream, created only when network chaos is actually on — a
        // chaos-off slot creates no stream and draws nothing.
        let mut net_rng = self
            .chaos
            .and_then(|c| c.net.as_ref())
            .map(|_| seeds.rng("chaos_net"));
        let mut submissions: Vec<SubmissionRecord> = Vec::new();
        let mut lost_messages: Vec<(BuilderId, RelayId)> = Vec::new();
        let mut timing_trace: Option<AuctionTimingTrace> = None;
        if let Some(tp) = self.timing {
            timing_trace = Some(self.submit_streamed(
                builders,
                &candidates,
                relays,
                tp,
                &mut jitter_rng,
                &mut net_rng,
                dishonest_bid,
                &mut submissions,
                &mut lost_messages,
            ));
        } else {
            for (bi, cand) in candidates.iter().enumerate() {
                let builder_id = builders[bi].id;
                // A crashed builder submits nothing this slot — and draws
                // no jitter, exactly like a builder with no relays.
                if self
                    .chaos
                    .map(|c| c.builder(builder_id).crashed)
                    .unwrap_or(false)
                {
                    telemetry::counter_add("pbs.auction.chaos.builder_crashes", 1);
                    continue;
                }
                for &(rid, variant_bid, _variant_value, variant_sandwiches) in &cand.relay_variants
                {
                    // Per-relay bid decay (latency: the last bid update differs
                    // across relays).
                    let decay = if jitter_rng.random::<f64>() < self.jitter_zero_prob {
                        Wei::ZERO
                    } else {
                        let f = jitter_rng.random::<f64>() * self.jitter_max_frac;
                        variant_bid.mul_ratio((f * 1_000_000.0) as u128, 1_000_000)
                    };
                    let mut declared = variant_bid.saturating_sub(decay);
                    let mut true_bid = declared;

                    // The exploit path: declare an inflated bid; relays that
                    // verify will reject it, Manifold (pre-fix) will not.
                    if let Some((cheater, inflated)) = dishonest_bid {
                        if cheater == builder_id {
                            declared = inflated;
                            true_bid = variant_bid;
                        }
                    }

                    // Network chaos: a partitioned or dropped submission
                    // never reaches the relay (the one-shot model has no
                    // time axis, so jitter is a no-op here).
                    if let (Some(net), Some(rng)) =
                        (self.chaos.and_then(|c| c.net.as_ref()), net_rng.as_mut())
                    {
                        if net.message_fate(builder_id, rid, rng).is_none() {
                            telemetry::counter_add("pbs.auction.chaos.messages_lost", 1);
                            lost_messages.push((builder_id, rid));
                            continue;
                        }
                    }
                    let Some(relay) = relays.get_mut(rid) else {
                        continue;
                    };
                    let accepted = relay.consider(
                        Submission {
                            slot: self.slot,
                            builder: builder_id,
                            pubkey: cand.pubkey,
                            declared_bid: declared,
                            true_bid,
                            sandwich_count: variant_sandwiches,
                            flagged_by_blacklist: false,
                        },
                        self.day,
                    );
                    if telemetry::enabled() {
                        let name = &relay.info.name;
                        telemetry::counter_add("pbs.auction.submissions", 1);
                        telemetry::counter_add(
                            &format!("pbs.relay.submissions{{relay=\"{name}\"}}"),
                            1,
                        );
                        if accepted {
                            telemetry::counter_add(
                                &format!("pbs.relay.submissions_accepted{{relay=\"{name}\"}}"),
                                1,
                            );
                        }
                    }
                    submissions.push(SubmissionRecord {
                        relay: rid,
                        builder: builder_id,
                        pubkey: cand.pubkey,
                        declared_bid: declared,
                        accepted,
                    });
                }
            }
        }
        drop(submit_span);

        // 3. Proposer side: the full MEV-Boost round (retry, fallback,
        // payload fetch); with every relay healthy it reduces to
        // `best_header` plus a delivery from the primary relay. Streamed
        // auctions answer `getHeader` from each relay's book at the
        // configured query instant.
        let propose_span = simcore::span!("auction.propose");
        let report = client.map(|c| match self.timing {
            Some(tp) => c.propose_timed(
                relays,
                TimedQuery {
                    now: self.slot_start().plus_millis(tp.header_query_ms),
                    staleness_lag_ms: tp.staleness_lag_ms,
                },
            ),
            None => c.propose(relays),
        });
        drop(propose_span);
        let (choice, payload_relay, missed, mut events) = match report {
            Some(r) => (r.choice, r.payload_relay, r.missed, r.events),
            None => (None, None, false, Vec::new()),
        };
        let result = match (choice, payload_relay) {
            (Some(choice), _) if missed => {
                // Signed but undeliverable: nothing lands on chain.
                SlotResult {
                    txs: Vec::new(),
                    fee_recipient: proposer_fee_recipient,
                    pbs: false,
                    builder: Some(choice.builder),
                    pubkey: Some(choice.pubkey),
                    winning_relays: choice.relays,
                    promised: choice.promised,
                    delivered: Wei::ZERO,
                    bundle_counts: [0; 3],
                    submissions,
                    missed: true,
                    events,
                    timing: timing_trace,
                    lost_messages,
                }
            }
            (Some(choice), Some(delivering)) => {
                let winner_idx = choice.builder.0 as usize;
                let cand = &candidates[winner_idx];
                let built = &cand.built;

                // Reconstruct the winning variant (censored if the
                // delivering relay censors) from the build-phase scan;
                // the full rescan only runs as a defensive fallback when
                // no censoring relay was subscribed at build time.
                let filtered: Option<BuiltBlock> = {
                    let relay = relays.get(delivering).expect("delivering relay exists");
                    if relay.info.ofac_compliant {
                        Some(match &cand.scan {
                            Some(scan) => {
                                telemetry::counter_add("pbs.auction.variant.materialized", 1);
                                scan.filter_block(built, relay.blacklist.as_ref(), self.day)
                            }
                            None => {
                                telemetry::counter_add("pbs.auction.variant.fallback_full", 1);
                                builders[winner_idx].censored_variant(
                                    built,
                                    self.base_fee,
                                    self.day,
                                    |a| relay.blacklist_flags(self.sanctions, a, self.day),
                                )
                            }
                        })
                    } else {
                        None
                    }
                };
                let final_built: &BuiltBlock = filtered.as_ref().unwrap_or(built);

                // Delivered value: the promise, minus relay shortfall, or
                // nearly nothing when the promise itself was fraudulent.
                let honest_payment =
                    final_built.bid(builders[winner_idx].margin_on(final_built.value));
                let mut delivered = choice.promised.min(honest_payment);
                if choice.promised > honest_payment {
                    // Fraudulent declaration accepted by a non-verifying
                    // relay: the builder pays next to nothing.
                    delivered = Wei::ZERO;
                }
                let relay = relays.get_mut(delivering).expect("delivering relay exists");
                if let Some(short) = relay.sample_shortfall(delivered) {
                    delivered = short;
                }
                if let Some(frac) = relay.faults.shortfall {
                    let forced = delivered
                        .saturating_sub(
                            delivered.mul_ratio((frac * 1_000_000.0) as u128, 1_000_000),
                        )
                        .min(delivered.saturating_sub(Wei(1)));
                    if forced < delivered {
                        events.push(BoostEvent::ShortfallInjected {
                            relay: delivering,
                            promised: delivered,
                            delivered: forced,
                        });
                        if telemetry::enabled() {
                            telemetry::counter_add("pbs.boost.shortfalls", 1);
                            telemetry::counter_add(
                                &format!("pbs.boost.shortfalls{{relay=\"{}\"}}", relay.info.name),
                                1,
                            );
                        }
                        delivered = forced;
                    }
                }
                // Builder insolvency: the builder cannot cover the bid it
                // promised; the payment tx falls short by the drawn
                // fraction. Attributed to the builder, not the relay.
                if let Some(frac) = self.chaos.and_then(|c| c.builder(choice.builder).shortfall) {
                    let forced = delivered
                        .saturating_sub(
                            delivered.mul_ratio((frac * 1_000_000.0) as u128, 1_000_000),
                        )
                        .min(delivered.saturating_sub(Wei(1)));
                    if forced < delivered {
                        events.push(BoostEvent::BuilderShortfall {
                            builder: choice.builder,
                            promised: delivered,
                            delivered: forced,
                        });
                        if telemetry::enabled() {
                            telemetry::counter_add("pbs.boost.builder_shortfalls", 1);
                        }
                        delivered = forced;
                    }
                }

                let bundle_counts = final_built.bundle_counts;
                // The censored path already owns its filtered tx list;
                // only the honest path needs a copy of the base block's.
                let mut txs = match filtered {
                    Some(f) => f.txs,
                    None => built.txs.clone(),
                };
                let payment = builders[winner_idx].payment_tx(proposer_fee_recipient, delivered);
                txs.push(payment);
                let fee_recipient = builders[winner_idx]
                    .profile
                    .fee_recipient
                    .unwrap_or(proposer_fee_recipient);

                SlotResult {
                    txs,
                    fee_recipient,
                    pbs: true,
                    builder: Some(choice.builder),
                    pubkey: Some(choice.pubkey),
                    winning_relays: choice.relays,
                    promised: choice.promised,
                    delivered,
                    bundle_counts,
                    submissions,
                    missed: false,
                    events,
                    timing: timing_trace,
                    lost_messages,
                }
            }
            _ => {
                // Non-PBS path: naive local build.
                let (txs, value) = LocalBuilder {
                    gas_limit: self.gas_limit,
                }
                .build(proposer_mempool, direct_to_proposer, self.base_fee);
                SlotResult {
                    txs,
                    fee_recipient: proposer_fee_recipient,
                    pbs: false,
                    builder: None,
                    pubkey: None,
                    winning_relays: Vec::new(),
                    promised: value,
                    delivered: value,
                    bundle_counts: [0; 3],
                    submissions,
                    missed: false,
                    events,
                    timing: timing_trace,
                    lost_messages,
                }
            }
        };

        telemetry::counter_add(
            match (result.missed, result.pbs) {
                (true, _) => "pbs.auction.outcome.missed",
                (false, true) => "pbs.auction.outcome.pbs",
                (false, false) => "pbs.auction.outcome.local",
            },
            1,
        );

        // 4. Slot teardown.
        for relay in relays.iter_mut() {
            relay.end_slot();
        }
        result
    }

    /// Absolute simulated time at which this slot opens.
    fn slot_start(&self) -> SimTime {
        SimTime::from_secs(self.slot.0 * eth_types::SECONDS_PER_SLOT)
    }

    /// The streamed submission phase: every builder's bid targets are
    /// settled with the *same* jitter draws as the one-shot path, then
    /// each builder's strategy unrolls those targets into a message
    /// schedule (bids and cancellations), messages travel through the
    /// builder→relay latency channels, and relays ingest them in arrival
    /// order against the bid-eligibility deadline and cancellation
    /// cutoff. Returns the slot's timing trace.
    ///
    /// Determinism: bid schedules are pure functions of the timing
    /// parameters (strategy, latency, deadline), unrolled in ascending
    /// builder order; arrival ties are broken by generation sequence.
    /// With the degenerate parameter set (`Naive {rebids: 1}` everywhere,
    /// zero latency, accrual floor 1000) relays see the exact submission
    /// sequence of the legacy auction.
    #[allow(clippy::too_many_arguments)]
    fn submit_streamed(
        &self,
        builders: &[Builder],
        candidates: &[Candidate],
        relays: &mut RelayRegistry,
        tp: &TimingParams,
        jitter_rng: &mut impl Rng,
        net_rng: &mut Option<rand::rngs::StdRng>,
        dishonest_bid: Option<(BuilderId, Wei)>,
        submissions: &mut Vec<SubmissionRecord>,
        lost_messages: &mut Vec<(BuilderId, RelayId)>,
    ) -> AuctionTimingTrace {
        // Targets: replay the legacy jitter sequence per (builder, relay).
        // `true_target` differs from `declared_target` only for the
        // dishonest builder. A crashed builder submits nothing and draws
        // no jitter — identical to the one-shot path's crash handling.
        type BidTargets = Vec<(RelayId, Wei, Wei, Wei, usize)>;
        let mut targets: Vec<BidTargets> = Vec::with_capacity(candidates.len());
        for (bi, cand) in candidates.iter().enumerate() {
            let builder_id = builders[bi].id;
            if self
                .chaos
                .map(|c| c.builder(builder_id).crashed)
                .unwrap_or(false)
            {
                telemetry::counter_add("pbs.auction.chaos.builder_crashes", 1);
                targets.push(Vec::new());
                continue;
            }
            let mut per_relay = Vec::with_capacity(cand.relay_variants.len());
            for &(rid, variant_bid, variant_value, variant_sandwiches) in &cand.relay_variants {
                let decay = if jitter_rng.random::<f64>() < self.jitter_zero_prob {
                    Wei::ZERO
                } else {
                    let f = jitter_rng.random::<f64>() * self.jitter_max_frac;
                    variant_bid.mul_ratio((f * 1_000_000.0) as u128, 1_000_000)
                };
                let mut declared = variant_bid.saturating_sub(decay);
                let mut true_bid = declared;
                if let Some((cheater, inflated)) = dishonest_bid {
                    if cheater == builder_id {
                        declared = inflated;
                        true_bid = variant_bid;
                    }
                }
                per_relay.push((rid, declared, true_bid, variant_value, variant_sandwiches));
            }
            targets.push(per_relay);
        }

        // The late-slot value increment is common — CEX–DEX arbitrage
        // and other market-wide opportunities that open near the end of
        // the slot are visible to every builder still bidding — so it is
        // indexed to the best value any builder can realize on that
        // relay. Only the floor share (exclusive flow, private bundles
        // received early) stays builder-specific. Competition leaves no
        // margin on the common component.
        let mut relay_vmax: Vec<(RelayId, Wei)> = Vec::new();
        for per_relay in &targets {
            for &(rid, _, _, value, _) in per_relay {
                match relay_vmax.iter_mut().find(|(r, _)| *r == rid) {
                    Some((_, v)) => *v = (*v).max(value),
                    None => relay_vmax.push((rid, value)),
                }
            }
        }
        let vmax_of = |rid: RelayId| {
            relay_vmax
                .iter()
                .find(|(r, _)| *r == rid)
                .map(|&(_, v)| v)
                .unwrap_or(Wei::ZERO)
        };
        // What a bid built on `own` (the builder-specific component,
        // margin already applied) and sent at `sent_ms` can commit to.
        let floor = tp.accrual_floor_permille.min(1000) as u128;
        let priced = |own: Wei, vmax: Wei, sent_ms: u64| -> Wei {
            let inc = tp.accrual_permille(sent_ms) - floor;
            own.mul_ratio(floor, 1000)
                .saturating_add(vmax.mul_ratio(inc, 1000))
        };

        // Unroll strategies into a message stream. Events carry their
        // send time; arrival adds the builder→relay channel delay. Every
        // honest bid is priced at the value accrued by its send time —
        // MEV arrives late in the slot, so bidding later commits more.
        let deadline = tp.bid_deadline_ms;
        let mut events: Vec<(u64, usize, TimedMessage)> = Vec::new();
        // Chaos applies at push time, before delivery: a partitioned or
        // dropped message never enters the stream (so relay books — and
        // sniper observations of them — stay consistent by construction),
        // a latency spike or jitter burst shifts its arrival.
        let mut push = |events: &mut Vec<(u64, usize, TimedMessage)>,
                        builder: BuilderId,
                        rid: RelayId,
                        sent_ms: u64,
                        msg: TimedMessage| {
            let mut extra_ms = 0u64;
            if let Some(chaos) = self.chaos {
                extra_ms += chaos.builder(builder).spike_ms;
                if let (Some(net), Some(rng)) = (chaos.net.as_ref(), net_rng.as_mut()) {
                    match net.message_fate(builder, rid, rng) {
                        None => {
                            telemetry::counter_add("pbs.auction.chaos.messages_lost", 1);
                            lost_messages.push((builder, rid));
                            return;
                        }
                        Some(jitter) => extra_ms += jitter,
                    }
                }
            }
            let arrival = tp
                .channel(builder, rid)
                .arrival(SimTime::from_millis(sent_ms));
            let seq = events.len();
            events.push((arrival.0.saturating_add(extra_ms), seq, msg));
        };

        // Non-snipers first (ascending builder id): their bids are what
        // snipers can observe.
        for (bi, per_relay) in targets.iter().enumerate() {
            let builder_id = builders[bi].id;
            let pubkey = candidates[bi].pubkey;
            match tp.strategy_for(builder_id) {
                BidStrategy::Sniper { .. } => continue,
                BidStrategy::Naive { rebids } => {
                    let n = rebids.max(1);
                    for &(rid, declared_target, true_target, _value, sandwiches) in per_relay {
                        for j in 0..n {
                            let sent = (j as u64) * deadline / (n as u64);
                            let declared = priced(declared_target, vmax_of(rid), sent);
                            let true_bid = if declared_target == true_target {
                                declared
                            } else {
                                true_target
                            };
                            push(
                                &mut events,
                                builder_id,
                                rid,
                                sent,
                                TimedMessage::Bid {
                                    relay: rid,
                                    builder: builder_id,
                                    pubkey,
                                    declared,
                                    true_bid,
                                    sandwiches,
                                },
                            );
                        }
                    }
                }
                BidStrategy::Canceller { rebid_permille } => {
                    for &(rid, declared_target, true_target, _value, sandwiches) in per_relay {
                        // Bid high early…
                        push(
                            &mut events,
                            builder_id,
                            rid,
                            deadline / 6,
                            TimedMessage::Bid {
                                relay: rid,
                                builder: builder_id,
                                pubkey,
                                declared: declared_target,
                                true_bid: true_target,
                                sandwiches,
                            },
                        );
                        // …pull it mid-slot…
                        push(
                            &mut events,
                            builder_id,
                            rid,
                            deadline / 2,
                            TimedMessage::Cancel {
                                relay: rid,
                                builder: builder_id,
                                declared: declared_target,
                            },
                        );
                        // …and rebid low, off the value accrued by then.
                        let rebid_at = 2 * deadline / 3;
                        let low = priced(declared_target, vmax_of(rid), rebid_at)
                            .mul_ratio(rebid_permille as u128, 1000);
                        let low_true = if declared_target == true_target {
                            low
                        } else {
                            true_target
                        };
                        push(
                            &mut events,
                            builder_id,
                            rid,
                            rebid_at,
                            TimedMessage::Bid {
                                relay: rid,
                                builder: builder_id,
                                pubkey,
                                declared: low,
                                true_bid: low_true,
                                sandwiches,
                            },
                        );
                    }
                }
            }
        }

        // Snipers (ascending builder id): each sizes its bid off the top
        // of book it can observe one builder-latency before sending.
        for (bi, per_relay) in targets.iter().enumerate() {
            let builder_id = builders[bi].id;
            let BidStrategy::Sniper { lead_ms } = tp.strategy_for(builder_id) else {
                continue;
            };
            let pubkey = candidates[bi].pubkey;
            for &(rid, declared_target, true_target, variant_value, sandwiches) in per_relay {
                // A sniper knows its own channel delay and dispatches one
                // delay plus a safety slack (`lead_ms`) before the
                // deadline, so the bid lands just in time — its latency
                // cost is paid in value (an earlier send commits less
                // accrued MEV) and in information (an older book view).
                let channel = tp.channel(builder_id, rid).delay_ms;
                let sent = deadline.saturating_sub(lead_ms + channel);
                let observe_by = sent.saturating_sub(tp.builder_latency(builder_id));
                let mut observed = Wei::ZERO;
                for &(arrival, _, ref msg) in &events {
                    let TimedMessage::Bid {
                        relay,
                        builder,
                        declared,
                        ..
                    } = *msg
                    else {
                        continue;
                    };
                    if relay != rid || arrival > observe_by {
                        continue;
                    }
                    // A bid the sniper saw cancelled is not top of book.
                    let cancelled = events.iter().any(|&(ca, _, ref cm)| {
                        matches!(
                            *cm,
                            TimedMessage::Cancel { relay: cr, builder: cb, declared: cd }
                                if cr == rid && cb == builder && cd == declared && ca <= observe_by
                        )
                    });
                    if !cancelled {
                        observed = observed.max(declared);
                    }
                }
                // The sniper's edge is timing: bidding at the deadline,
                // it commits to nearly the full accrued value while
                // everyone else's last bid left mid-slot. Uncontested it
                // keeps its margin; contested it escalates the margin
                // away, up to the value accrued at its send time, priced
                // just above the (possibly stale) top of book — a
                // high-latency sniper observes an older book and
                // underbids, and its bid may miss the deadline entirely.
                let margin_bid = priced(declared_target, vmax_of(rid), sent);
                let value_cap = priced(variant_value, vmax_of(rid), sent);
                let declared = if declared_target != true_target {
                    declared_target // dishonest inflation is already maximal
                } else if observed.is_zero() {
                    margin_bid
                } else {
                    margin_bid.max(value_cap.min(observed.mul_ratio(101, 100)))
                };
                let true_bid = if declared_target == true_target {
                    declared
                } else {
                    true_target
                };
                push(
                    &mut events,
                    builder_id,
                    rid,
                    sent,
                    TimedMessage::Bid {
                        relay: rid,
                        builder: builder_id,
                        pubkey,
                        declared,
                        true_bid,
                        sandwiches,
                    },
                );
            }
        }

        // Deliver in arrival order (generation sequence breaks ties).
        events.sort_by_key(|&(arrival, seq, _)| (arrival, seq));
        let t0 = self.slot_start();
        let deadline_abs = t0.plus_millis(tp.bid_deadline_ms);
        let cutoff_abs = t0.plus_millis(tp.cancel_cutoff_ms);
        let mut trace = AuctionTimingTrace {
            bids: 0,
            cancels: 0,
            late_bids: 0,
            top_bid_by_tick: Vec::new(),
        };
        for (arrival_ms, _seq, msg) in events {
            let arrival = t0.plus_millis(arrival_ms);
            match msg {
                TimedMessage::Bid {
                    relay: rid,
                    builder,
                    pubkey,
                    declared,
                    true_bid,
                    sandwiches,
                } => {
                    if arrival_ms > tp.bid_deadline_ms {
                        trace.late_bids += 1;
                    }
                    let Some(relay) = relays.get_mut(rid) else {
                        continue;
                    };
                    let accepted = relay.consider_timed(
                        Submission {
                            slot: self.slot,
                            builder,
                            pubkey,
                            declared_bid: declared,
                            true_bid,
                            sandwich_count: sandwiches,
                            flagged_by_blacklist: false,
                        },
                        self.day,
                        arrival,
                        deadline_abs,
                    );
                    if accepted {
                        trace.bids += 1;
                    }
                    if telemetry::enabled() {
                        let name = &relay.info.name;
                        telemetry::counter_add("pbs.auction.submissions", 1);
                        telemetry::counter_add(
                            &format!("pbs.relay.submissions{{relay=\"{name}\"}}"),
                            1,
                        );
                        if accepted {
                            telemetry::counter_add(
                                &format!("pbs.relay.submissions_accepted{{relay=\"{name}\"}}"),
                                1,
                            );
                        }
                    }
                    submissions.push(SubmissionRecord {
                        relay: rid,
                        builder,
                        pubkey,
                        declared_bid: declared,
                        accepted,
                    });
                }
                TimedMessage::Cancel {
                    relay: rid,
                    builder,
                    declared,
                } => {
                    let Some(relay) = relays.get_mut(rid) else {
                        continue;
                    };
                    if relay.cancel_timed(builder, declared, arrival, cutoff_abs) {
                        trace.cancels += 1;
                        telemetry::counter_add("pbs.auction.cancels", 1);
                    }
                }
            }
        }

        // Sample the escalation curve: top declared bid across all relay
        // books at each tick. Views only ever grow with t (cancellation
        // is retroactive), so the curve is monotone non-decreasing.
        let grid = TickGrid {
            tick_ms: tp.tick_ms,
            deadline_ms: tp.bid_deadline_ms,
        };
        for t in grid.ticks() {
            let at = t0.plus_millis(t);
            let mut top = Wei::ZERO;
            for relay in relays.iter() {
                if let Some(best) = relay.book_view_at(at) {
                    top = top.max(best.submission.declared_bid);
                }
            }
            trace.top_bid_by_tick.push(top);
        }
        trace
    }

    /// Convenience: whether any transaction in a list touches the
    /// authoritative sanctions list on this auction's day.
    pub fn any_sanctioned(&self, txs: &[Transaction]) -> bool {
        txs.iter()
            .any(|t| tx_touches_sanctioned(t, |a| self.sanctions.is_sanctioned(a, self.day)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuilderProfile, MarginPolicy, SubsidyPolicy};
    use simcore::SeedDomain;

    fn mk_builder(i: u32, name: &str, relays: Vec<RelayId>) -> Builder {
        let mut profile = BuilderProfile::new(
            name,
            MarginPolicy::FixedEth(0.001),
            SubsidyPolicy::Never,
            1.0,
        );
        profile.relays = relays;
        Builder::new(BuilderId(i), profile)
    }

    fn mk_tx(label: &str, tip_gwei: f64) -> Transaction {
        Transaction::transfer(
            Address::derive(label),
            Address::derive("sink"),
            Wei::from_eth(0.5),
            0,
            GasPrice::from_gwei(tip_gwei),
            GasPrice::from_gwei(1000.0),
        )
    }

    fn auction<'a>(sanctions: &'a SanctionsList) -> SlotAuction<'a> {
        SlotAuction {
            slot: Slot(10),
            day: DayIndex(30),
            base_fee: GasPrice::from_gwei(10.0),
            gas_limit: Gas::BLOCK_LIMIT,
            sanctions,
            jitter_zero_prob: 0.15,
            jitter_max_frac: 0.03,
            timing: None,
            chaos: None,
        }
    }

    fn run_simple(
        builders: &mut [Builder],
        relays: &mut RelayRegistry,
        client: Option<&MevBoostClient>,
        mempool_txs: &[Transaction],
    ) -> SlotResult {
        let sanctions = SanctionsList::new();
        let a = auction(&sanctions);
        let bundles: Vec<Vec<Bundle>> = builders.iter().map(|_| Vec::new()).collect();
        let seeds = SeedDomain::new(5).subdomain("auction");
        let mut proposer_pool = Mempool::new(1024);
        for t in mempool_txs {
            proposer_pool.insert(t.clone());
        }
        a.run(
            builders,
            &bundles,
            mempool_txs,
            relays,
            client,
            Address::derive("proposer"),
            &proposer_pool,
            &[],
            &seeds,
            None,
        )
    }

    #[test]
    fn pbs_block_ends_with_payment_to_proposer() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        let mut builders = vec![mk_builder(0, "flashbots", vec![us])];
        let mempool = vec![mk_tx("a", 5.0), mk_tx("b", 2.0)];
        let client = MevBoostClient::new(vec![us]);
        let result = run_simple(&mut builders, &mut relays, Some(&client), &mempool);

        assert!(result.pbs);
        assert_eq!(result.builder, Some(BuilderId(0)));
        let last = result.txs.last().unwrap();
        assert_eq!(last.to, Address::derive("proposer"));
        assert_eq!(last.sender, Address::derive("builder:flashbots"));
        assert_eq!(last.value, result.delivered);
        assert!(result.delivered <= result.promised);
        assert_eq!(result.fee_recipient, Address::derive("builder:flashbots"));
    }

    #[test]
    fn best_builder_wins() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        // Builder 1 keeps a huge margin → lower bid; builder 0 keeps little.
        let mut b0 = mk_builder(0, "lean", vec![us]);
        b0.profile.margin = MarginPolicy::FixedEth(0.0001);
        let mut b1 = mk_builder(1, "greedy", vec![us]);
        b1.profile.margin = MarginPolicy::Share(0.5);
        let mut builders = vec![b0, b1];
        let mempool = vec![mk_tx("a", 50.0), mk_tx("b", 40.0)];
        let client = MevBoostClient::new(vec![us]);
        let result = run_simple(&mut builders, &mut relays, Some(&client), &mempool);
        assert_eq!(result.builder, Some(BuilderId(0)));
    }

    #[test]
    fn no_client_means_local_block() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        let mut builders = vec![mk_builder(0, "flashbots", vec![us])];
        let mempool = vec![mk_tx("a", 5.0)];
        let result = run_simple(&mut builders, &mut relays, None, &mempool);
        assert!(!result.pbs);
        assert!(result.builder.is_none());
        assert_eq!(result.fee_recipient, Address::derive("proposer"));
        assert_eq!(result.txs.len(), 1); // no payment tx
        assert_eq!(result.promised, result.delivered);
    }

    #[test]
    fn unsubscribed_proposer_falls_back_to_local() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        let aestus = relays.id_by_name("Aestus");
        let mut builders = vec![mk_builder(0, "flashbots", vec![us])];
        let mempool = vec![mk_tx("a", 5.0)];
        let client = MevBoostClient::new(vec![aestus]); // wrong relay
        let result = run_simple(&mut builders, &mut relays, Some(&client), &mempool);
        assert!(!result.pbs);
    }

    #[test]
    fn submissions_are_recorded_per_relay() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        let gn = relays.id_by_name("GnosisDAO");
        let mut builders = vec![mk_builder(0, "multi", vec![us, gn])];
        let mempool = vec![mk_tx("a", 5.0)];
        let client = MevBoostClient::new(vec![us, gn]);
        let result = run_simple(&mut builders, &mut relays, Some(&client), &mempool);
        assert_eq!(result.submissions.len(), 2);
        assert!(result.submissions.iter().all(|s| s.accepted));
    }

    #[test]
    fn censoring_relay_wins_with_filtered_block() {
        // A sanctioned tx is in the mempool; the builder submits the full
        // block to a non-censoring relay and a filtered one to Flashbots.
        let mut sanctions = SanctionsList::new();
        let bad = Address::derive("tornado");
        sanctions.add(bad, DayIndex(0));

        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let fb = relays.id_by_name("Flashbots");
        let mut builders = vec![mk_builder(0, "flashbots", vec![fb])];

        let mut dirty = mk_tx("dirty", 50.0);
        dirty.to = bad;
        let dirty = dirty.finalize();
        let clean = mk_tx("clean", 5.0);
        let mempool = vec![dirty.clone(), clean.clone()];

        let a = auction(&sanctions);
        let bundles = vec![Vec::new()];
        let seeds = SeedDomain::new(5).subdomain("auction");
        let client = MevBoostClient::new(vec![fb]);
        let pool = Mempool::new(16);
        let result = a.run(
            &mut builders,
            &bundles,
            &mempool,
            &mut relays,
            Some(&client),
            Address::derive("proposer"),
            &pool,
            &[],
            &seeds,
            None,
        );
        assert!(result.pbs);
        // The sanctioned tx is absent from the winning block.
        assert!(result.txs.iter().all(|t| t.hash != dirty.hash));
        assert!(result.txs.iter().any(|t| t.hash == clean.hash));
    }

    #[test]
    fn manifold_exploit_delivers_nothing() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let mf = relays.id_by_name("Manifold");
        relays.get_mut(mf).unwrap().bid_verification_from = Some(DayIndex(31));
        let mut builders = vec![mk_builder(0, "cheater", vec![mf])];
        let mempool = vec![mk_tx("a", 5.0)];

        let sanctions = SanctionsList::new();
        let a = auction(&sanctions); // day 30: before the fix
        let bundles = vec![Vec::new()];
        let seeds = SeedDomain::new(5).subdomain("auction");
        let client = MevBoostClient::new(vec![mf]);
        let pool = Mempool::new(16);
        let result = a.run(
            &mut builders,
            &bundles,
            &mempool,
            &mut relays,
            Some(&client),
            Address::derive("proposer"),
            &pool,
            &[],
            &seeds,
            Some((BuilderId(0), Wei::from_eth(278.0))),
        );
        assert!(result.pbs);
        assert_eq!(result.promised, Wei::from_eth(278.0));
        assert_eq!(result.delivered, Wei::ZERO);
    }

    #[test]
    fn relays_are_cleared_after_the_slot() {
        let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
        let us = relays.id_by_name("UltraSound");
        let mut builders = vec![mk_builder(0, "b", vec![us])];
        let mempool = vec![mk_tx("a", 5.0)];
        let client = MevBoostClient::new(vec![us]);
        run_simple(&mut builders, &mut relays, Some(&client), &mempool);
        assert!(relays.get(us).unwrap().best_bid().is_none());
    }

    #[test]
    fn auction_result_is_thread_count_invariant() {
        let run_at = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let mut relays = RelayRegistry::paper(&SeedDomain::new(1));
            let us = relays.id_by_name("UltraSound");
            let fb = relays.id_by_name("Flashbots");
            let mut builders: Vec<Builder> = (0..6)
                .map(|i| mk_builder(i, &format!("b{i}"), vec![us, fb]))
                .collect();
            let mempool: Vec<Transaction> = (0..8)
                .map(|i| mk_tx(&format!("t{i}"), 1.0 + i as f64))
                .collect();
            let client = MevBoostClient::new(vec![us, fb]);
            run_simple(&mut builders, &mut relays, Some(&client), &mempool)
        };
        let sequential = run_at(1);
        let parallel = run_at(4);
        assert_eq!(sequential, parallel);
        rayon::ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn any_sanctioned_prescan_matches_list() {
        let mut sanctions = SanctionsList::new();
        let bad = Address::derive("bad");
        sanctions.add(bad, DayIndex(0));
        let a = auction(&sanctions);
        let mut t = mk_tx("x", 1.0);
        t.to = bad;
        assert!(a.any_sanctioned(&[t.finalize()]));
        assert!(!a.any_sanctioned(&[mk_tx("y", 1.0)]));
    }
}
