//! Block builders (paper §2.2, §4.2, §5.2, Table 5).
//!
//! Builders are the professionalized block producers of PBS: they receive
//! searcher bundles over private channels, merge them with public mempool
//! flow, and bid the resulting block to relays. Profiles differ along the
//! axes the paper measures:
//!
//! * **margin policy** — Flashbots/Eden/blocknative keep a tiny fixed cut
//!   (Figure 11's low-variance cluster); rsync/Builder 1/Manta keep a
//!   percentage (the high-profit cluster),
//! * **subsidy policy** — builder0x69/beaverbuild/eth-builder sometimes bid
//!   *above* block value to win flow; the bloXroute builders do so often
//!   enough that their mean profit is negative (§5.2),
//! * **order-flow access** — the fraction of searcher bundles a builder
//!   receives, the real moat behind "professionalized builders have a
//!   distinct advantage".

use crate::relay::RelayId;
use eth_types::{Address, BlsPublicKey, Gas, GasPrice, Transaction, TxHash, Wei};
use mev::{Bundle, MevKind};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use simcore::{BufferPool, FxHashSet, LogNormal};

thread_local! {
    /// Slot-scoped scratch reused across builders on the same rayon
    /// worker (ROADMAP item 4): ordering keys and the mempool lookup
    /// index for the greedy packer. Pooling them removes the recurring
    /// per-builder allocations from the auction's parallel build phase;
    /// rayon workers are long-lived, so each warms its pools once.
    static BUNDLE_ORDER: BufferPool<(Wei, TxHash, u32)> = const { BufferPool::new() };
    static MEMPOOL_INDEX: BufferPool<(TxHash, u32)> = const { BufferPool::new() };
    static DENSITY_ORDER: BufferPool<(f64, TxHash, u32)> = const { BufferPool::new() };
}

/// Fills caller-provided (pooled) buffers with the per-slot tables.
fn fill_slot_tables(
    mempool_index: &mut Vec<(TxHash, u32)>,
    density_order: &mut Vec<(f64, TxHash, u32)>,
    mempool: &[Transaction],
    base_fee: GasPrice,
) {
    // Hash → mempool position, replacing the per-builder BTreeMap.
    // The stable sort keeps duplicate hashes in input order and
    // lookups take the *last* match, preserving the map's
    // insert-wins semantics.
    mempool_index.extend(mempool.iter().enumerate().map(|(i, t)| (t.hash, i as u32)));
    mempool_index.sort_by_key(|e| e.0);
    // Mempool fill order, value-densest first. Density keys are
    // precomputed (one `producer_value` per tx instead of one per
    // comparison) and ordered by `total_cmp`, which stays total on
    // degenerate float values; densities here are non-negative and
    // finite, where `total_cmp` and `partial_cmp` agree.
    density_order.extend(
        mempool
            .iter()
            .enumerate()
            .filter(|(_, t)| t.includable_at(base_fee))
            .map(|(i, t)| {
                let density = t.producer_value(base_fee).0 as f64 / t.gas_used().0.max(1) as f64;
                (density, t.hash, i as u32)
            }),
    );
    density_order.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
}

/// Computes the per-slot ordering tables in arena-pooled buffers and runs
/// `f` against them.
///
/// The mempool lookup index and the density-sorted fill order depend only
/// on (mempool view, base fee) — both identical across the slot's
/// builders — so the auction computes them once here and every builder of
/// the slot reads them via [`Builder::build_shared`], instead of each
/// builder sorting the same few hundred transactions again. Per-builder
/// conflict state (`used_txs`) is applied at iteration time, which leaves
/// the fill sequence byte-identical to a per-builder sort over the
/// filtered set. The backing storage comes from the same thread-local
/// [`BufferPool`]s the solo [`Builder::build`] path uses, so the tables
/// cost two arena acquisitions per slot rather than two heap growths.
pub fn with_slot_tables<R>(
    mempool: &[Transaction],
    base_fee: GasPrice,
    f: impl FnOnce(&[(TxHash, u32)], &[(f64, TxHash, u32)]) -> R,
) -> R {
    MEMPOOL_INDEX.with(|index_pool| {
        DENSITY_ORDER.with(|density_pool| {
            index_pool.scope(|mempool_index| {
                density_pool.scope(|density_order| {
                    fill_slot_tables(mempool_index, density_order, mempool, base_fee);
                    f(mempool_index, density_order)
                })
            })
        })
    })
}

/// Index of a builder in the scenario's builder table.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct BuilderId(pub u32);

impl simcore::Snapshot for BuilderId {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.0.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(BuilderId(simcore::Snapshot::decode(r)?))
    }
}

/// How much of the block's value the builder keeps for itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarginPolicy {
    /// Keep a fixed amount in ETH (clamped to the block value).
    FixedEth(f64),
    /// Keep a fraction of the block value.
    Share(f64),
}

/// When and how hard the builder subsidizes blocks (bids above value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubsidyPolicy {
    /// Never subsidizes.
    Never,
    /// Subsidizes with probability `prob`; the subsidy is a log-normal
    /// *fraction of the block's value* (median `median_frac`), so the
    /// policy scales with market conditions.
    Sometimes {
        /// Per-block subsidy probability.
        prob: f64,
        /// Median subsidy as a fraction of block value.
        median_frac: f64,
    },
}

/// A builder's static profile.
#[derive(Debug, Clone, PartialEq)]
pub struct BuilderProfile {
    /// Display name ("Flashbots", "beaverbuild", …).
    pub name: String,
    /// The fee-recipient address the builder sets in its blocks. `None`
    /// models Table 5's Builder 3/6, which write the *proposer's* address
    /// into the fee-recipient field (and thus leave no on-chain trace).
    pub fee_recipient: Option<Address>,
    /// BLS public keys the builder submits under (Table 5 lists several).
    pub pubkeys: Vec<BlsPublicKey>,
    /// Margin policy.
    pub margin: MarginPolicy,
    /// Subsidy policy.
    pub subsidy: SubsidyPolicy,
    /// Fraction of the searcher bundle flow this builder receives.
    pub flow_access: f64,
    /// Relays the builder currently submits to.
    pub relays: Vec<RelayId>,
}

impl BuilderProfile {
    /// A convenience constructor.
    pub fn new(name: &str, margin: MarginPolicy, subsidy: SubsidyPolicy, flow_access: f64) -> Self {
        let mut pubkeys = Vec::new();
        for k in 0..3 {
            pubkeys.push(BlsPublicKey::derive(&format!("builder:{name}:key{k}")));
        }
        BuilderProfile {
            name: name.to_string(),
            fee_recipient: Some(Address::derive(&format!("builder:{name}"))),
            pubkeys,
            margin,
            subsidy,
            flow_access,
            relays: Vec::new(),
        }
    }

    /// Marks the builder as using the proposer's fee recipient (no on-chain
    /// identity).
    pub fn without_fee_recipient(mut self) -> Self {
        self.fee_recipient = None;
        self
    }
}

/// What a builder works from when building for a slot.
pub struct BuildInputs<'a> {
    /// The base fee in force.
    pub base_fee: GasPrice,
    /// Block gas limit.
    pub gas_limit: Gas,
    /// Public mempool transactions visible to the builder.
    pub mempool: &'a [Transaction],
    /// Searcher bundles delivered to this builder.
    pub bundles: &'a [Bundle],
}

/// The builder's output before relay submission.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltBlock {
    /// Ordered transactions, payment tx *not* yet appended.
    pub txs: Vec<Transaction>,
    /// Estimated block value (priority fees + coinbase tips) at the base fee.
    pub value: Wei,
    /// Subsidy the builder adds on top of the value when bidding.
    pub subsidy: Wei,
    /// Number of bundles of each MEV kind merged in.
    pub bundle_counts: [usize; 3],
    /// Gas used.
    pub gas_used: Gas,
}

impl BuiltBlock {
    /// The bid the builder will declare: value − margin + subsidy.
    pub fn bid(&self, margin: Wei) -> Wei {
        self.bid_at(self.value, margin)
    }

    /// The bid for a (possibly censored) variant of this block whose
    /// value dropped to `value`, without materializing the variant —
    /// the same formula as [`BuiltBlock::bid`], since censoring never
    /// changes the subsidy.
    pub fn bid_at(&self, value: Wei, margin: Wei) -> Wei {
        value.saturating_sub(margin).saturating_add(self.subsidy)
    }
}

/// A live builder (profile + payment-nonce counter).
///
/// Builders hold no RNG of their own: block building draws from a
/// per-slot, per-builder stream the auction derives and passes in, so
/// candidate blocks can be constructed in parallel from `&Builder` without
/// the result depending on thread scheduling.
#[derive(Debug)]
pub struct Builder {
    /// Static identity and policy.
    pub profile: BuilderProfile,
    /// Builder id within the scenario table.
    pub id: BuilderId,
    payment_nonce: u64,
}

impl Builder {
    /// Creates a live builder.
    pub fn new(id: BuilderId, profile: BuilderProfile) -> Self {
        Builder {
            profile,
            id,
            payment_nonce: 0,
        }
    }

    /// The next payment-transaction nonce (path-dependent state that must
    /// survive a checkpoint, or resumed payment txs would collide).
    pub fn payment_nonce(&self) -> u64 {
        self.payment_nonce
    }

    /// Restores the payment nonce from a checkpoint.
    pub fn restore_payment_nonce(&mut self, nonce: u64) {
        self.payment_nonce = nonce;
    }

    /// The primary submission pubkey.
    pub fn pubkey(&self) -> BlsPublicKey {
        self.profile.pubkeys[0]
    }

    /// A per-slot pubkey (builders rotate keys; Table 5 maps several keys
    /// to each builder).
    pub fn pubkey_for_slot(&self, slot: eth_types::Slot) -> BlsPublicKey {
        let n = self.profile.pubkeys.len() as u64;
        self.profile.pubkeys[(slot.0 % n) as usize]
    }

    /// Builds the most profitable block the builder can see.
    ///
    /// Strategy (value-greedy with bundle merging):
    /// 1. sort bundles by bid value, merge greedily while conflict-free
    ///    (one bundle per victim, one arb per pool pair),
    /// 2. fill remaining gas with mempool transactions by value density,
    /// 3. sample the subsidy per policy from `rng` — callers pass a stream
    ///    derived from (slot, builder id), which keeps parallel builds
    ///    deterministic.
    pub fn build(&self, inputs: &BuildInputs<'_>, rng: &mut StdRng) -> BuiltBlock {
        with_slot_tables(
            inputs.mempool,
            inputs.base_fee,
            |mempool_index, density_order| {
                self.build_inner(inputs, mempool_index, density_order, rng)
            },
        )
    }

    /// [`Builder::build`] against precomputed per-slot tables — the
    /// auction's entry point, where all builders of a slot share one
    /// [`with_slot_tables`] scope instead of re-sorting the same mempool
    /// view.
    pub fn build_shared(
        &self,
        inputs: &BuildInputs<'_>,
        mempool_index: &[(TxHash, u32)],
        density_order: &[(f64, TxHash, u32)],
        rng: &mut StdRng,
    ) -> BuiltBlock {
        self.build_inner(inputs, mempool_index, density_order, rng)
    }

    /// The packer core, reading the (shared or locally computed) tables.
    fn build_inner(
        &self,
        inputs: &BuildInputs<'_>,
        mempool_index: &[(TxHash, u32)],
        density_order: &[(f64, TxHash, u32)],
        rng: &mut StdRng,
    ) -> BuiltBlock {
        BUNDLE_ORDER.with(|bundle_pool| {
            bundle_pool.scope(|bundle_order| {
                self.build_with_scratch(inputs, rng, bundle_order, mempool_index, density_order)
            })
        })
    }

    /// [`Builder::build`] with caller-provided tables and (pooled) scratch.
    fn build_with_scratch(
        &self,
        inputs: &BuildInputs<'_>,
        rng: &mut StdRng,
        bundle_order: &mut Vec<(Wei, TxHash, u32)>,
        mempool_index: &[(TxHash, u32)],
        density_order: &[(f64, TxHash, u32)],
    ) -> BuiltBlock {
        let base = inputs.base_fee;
        // Reserve room for the final builder→proposer payment transaction;
        // a block packed to the limit would otherwise have its payment
        // dropped by the executor.
        let gas_limit = Gas(inputs.gas_limit.0.saturating_sub(21_000));
        let mut txs: Vec<Transaction> = Vec::new();
        let mut gas = Gas::ZERO;
        let mut value = Wei::ZERO;
        let mut bundle_counts = [0usize; 3];
        let mut used_victims: FxHashSet<TxHash> = FxHashSet::default();
        let mut used_txs: FxHashSet<TxHash> = FxHashSet::default();

        // 1. bundles, best first. Ordering keys are computed once per
        // bundle (`bid_value` walks the bundle's txs) instead of once per
        // comparison; the stable sort over input order reproduces the
        // former `Vec<&Bundle>` ordering exactly.
        bundle_order.extend(
            inputs
                .bundles
                .iter()
                .enumerate()
                .map(|(i, b)| (b.bid_value(base), b.txs[0].hash, i as u32)),
        );
        bundle_order.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let lookup = |h: TxHash| -> Option<&Transaction> {
            let end = mempool_index.partition_point(|e| e.0 <= h);
            let &(hash, i) = mempool_index[..end].last()?;
            (hash == h).then(|| &inputs.mempool[i as usize])
        };

        for &(_, _, bi) in bundle_order.iter() {
            let bundle = &inputs.bundles[bi as usize];
            // Conflict checks.
            if let Some(victim) = bundle.pinned_victim {
                if used_victims.contains(&victim) || lookup(victim).is_none() {
                    continue;
                }
            }
            let victim_gas = bundle
                .pinned_victim
                .and_then(&lookup)
                .map(|t| t.gas_used())
                .unwrap_or(Gas::ZERO);
            let need = bundle.gas() + victim_gas;
            if gas.0 + need.0 > gas_limit.0 {
                continue;
            }
            if bundle.txs.iter().any(|t| used_txs.contains(&t.hash)) {
                continue;
            }

            // Place: sandwich wraps the victim; others append in order.
            match (bundle.kind, bundle.pinned_victim) {
                (MevKind::Sandwich, Some(victim)) => {
                    let victim_tx = lookup(victim).expect("victim presence checked above");
                    txs.push(bundle.txs[0].clone());
                    txs.push(victim_tx.clone());
                    txs.push(bundle.txs[1].clone());
                    used_victims.insert(victim);
                    used_txs.insert(victim);
                    value += victim_tx.producer_value(base);
                }
                _ => {
                    for t in &bundle.txs {
                        txs.push(t.clone());
                    }
                }
            }
            for t in &bundle.txs {
                used_txs.insert(t.hash);
                value += t.producer_value(base);
            }
            gas += need;
            bundle_counts[match bundle.kind {
                MevKind::Sandwich => 0,
                MevKind::Arbitrage => 1,
                MevKind::Liquidation => 2,
            }] += 1;
        }

        // 2. fill with mempool flow, value-densest first, reading the
        // shared density table. Bundle-consumed transactions are skipped
        // here rather than at table construction (the table is shared
        // across builders with different conflict sets); filtering before
        // or after the sort leaves the survivors in the same order, so
        // the fill sequence is unchanged.
        for &(_, _, ti) in density_order.iter() {
            let t = &inputs.mempool[ti as usize];
            if !used_txs.is_empty() && used_txs.contains(&t.hash) {
                continue;
            }
            let g = t.gas_used();
            if gas.0 + g.0 > gas_limit.0 {
                continue;
            }
            gas += g;
            value += t.producer_value(base);
            txs.push(t.clone());
        }

        // 3. subsidy.
        let subsidy = match self.profile.subsidy {
            SubsidyPolicy::Never => Wei::ZERO,
            SubsidyPolicy::Sometimes { prob, median_frac } => {
                if rng.random::<f64>() < prob {
                    let d = LogNormal::with_median(median_frac.max(1e-9), 0.6);
                    let frac = d.sample(rng).min(1.0);
                    value.mul_ratio((frac * 10_000.0) as u128, 10_000)
                } else {
                    Wei::ZERO
                }
            }
        };

        BuiltBlock {
            txs,
            value,
            subsidy,
            bundle_counts,
            gas_used: gas,
        }
    }

    /// The margin the builder keeps on a block of the given value.
    pub fn margin_on(&self, value: Wei) -> Wei {
        match self.profile.margin {
            MarginPolicy::FixedEth(eth) => Wei::from_eth(eth).min(value),
            MarginPolicy::Share(s) => value.mul_ratio((s * 10_000.0) as u128, 10_000),
        }
    }

    /// Removes transactions a censoring relay would reject on `day`
    /// (listed-address interactions plus, once designated, any TRON
    /// transfer), returning the filtered variant and its (reduced) value.
    pub fn censored_variant<F: Fn(Address) -> bool>(
        &self,
        built: &BuiltBlock,
        base_fee: GasPrice,
        day: eth_types::DayIndex,
        listed: F,
    ) -> BuiltBlock {
        let flagged = |t: &Transaction| crate::ofac::tx_touches_sanctioned_on(t, day, &listed);
        let mut out = built.clone();
        let removed_value: Wei = out
            .txs
            .iter()
            .filter(|t| flagged(t))
            .map(|t| t.producer_value(base_fee))
            .sum();
        let removed_gas: Gas = out
            .txs
            .iter()
            .filter(|t| flagged(t))
            .map(|t| t.gas_used())
            .sum();
        out.txs.retain(|t| !flagged(t));
        out.value = out.value.saturating_sub(removed_value);
        out.gas_used = out.gas_used.saturating_sub(removed_gas);
        out
    }

    /// Constructs the PBS payment transaction: the block's *last*
    /// transaction, transferring the bid to the proposer's fee recipient
    /// (§2.2). `deliver` may be below the promised bid when the relay fails
    /// to verify (Table 4's over-promised blocks).
    pub fn payment_tx(&mut self, proposer_fee_recipient: Address, deliver: Wei) -> Transaction {
        let from = self.profile.fee_recipient.unwrap_or(proposer_fee_recipient);
        let nonce = self.payment_nonce;
        self.payment_nonce += 1;
        Transaction::transfer(
            from,
            proposer_fee_recipient,
            deliver,
            nonce,
            GasPrice::ZERO,
            GasPrice(u128::MAX / 2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_types::{Slot, TxEffect, TxPrivacy};
    use simcore::SeedDomain;

    fn mk_tx(label: &str, tip_gwei: f64, bribe_eth: f64, extra_gas: u64) -> Transaction {
        let mut t = Transaction::transfer(
            Address::derive(label),
            Address::derive("sink"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(tip_gwei),
            GasPrice::from_gwei(1000.0),
        );
        t.coinbase_tip = Wei::from_eth(bribe_eth);
        t.effect = TxEffect::Generic { extra_gas };
        t.privacy = TxPrivacy::Public;
        t.finalize()
    }

    fn mk_bundle(
        kind: MevKind,
        txs: Vec<Transaction>,
        victim: Option<TxHash>,
        profit: f64,
    ) -> Bundle {
        Bundle {
            txs,
            pinned_victim: victim,
            kind,
            expected_profit: Wei::from_eth(profit),
            searcher: Address::derive("searcher"),
        }
    }

    fn builder(margin: MarginPolicy, subsidy: SubsidyPolicy) -> Builder {
        Builder::new(
            BuilderId(0),
            BuilderProfile::new("test", margin, subsidy, 1.0),
        )
    }

    fn rng() -> StdRng {
        SeedDomain::new(7).rng("builder:test")
    }

    fn base() -> GasPrice {
        GasPrice::from_gwei(10.0)
    }

    #[test]
    fn mempool_fill_is_value_greedy() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let mempool = vec![
            mk_tx("low", 1.0, 0.0, 0),
            mk_tx("high", 50.0, 0.0, 0),
            mk_tx("briber", 0.1, 0.3, 0),
        ];
        let built = b.build(
            &BuildInputs {
                base_fee: base(),
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &mempool,
                bundles: &[],
            },
            &mut rng(),
        );
        assert_eq!(built.txs.len(), 3);
        // Briber first (highest value per gas), then high tip, then low.
        assert_eq!(built.txs[0].sender, Address::derive("briber"));
        assert_eq!(built.txs[1].sender, Address::derive("high"));
        let expected: Wei = mempool.iter().map(|t| t.producer_value(base())).sum();
        assert_eq!(built.value, expected);
    }

    #[test]
    fn sandwich_bundle_wraps_its_victim() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let victim = mk_tx("victim", 5.0, 0.0, 101_000);
        let front = mk_tx("attacker-front", 0.1, 0.0, 101_000);
        let back = mk_tx("attacker-back", 0.1, 0.5, 101_000);
        let bundle = mk_bundle(
            MevKind::Sandwich,
            vec![front.clone(), back.clone()],
            Some(victim.hash),
            0.6,
        );
        let built = b.build(
            &BuildInputs {
                base_fee: base(),
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: std::slice::from_ref(&victim),
                bundles: &[bundle],
            },
            &mut rng(),
        );
        let order: Vec<TxHash> = built.txs.iter().map(|t| t.hash).collect();
        assert_eq!(order, vec![front.hash, victim.hash, back.hash]);
        assert_eq!(built.bundle_counts[0], 1);
    }

    #[test]
    fn sandwich_without_its_victim_is_dropped() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let ghost_victim = mk_tx("ghost", 5.0, 0.0, 0);
        let bundle = mk_bundle(
            MevKind::Sandwich,
            vec![mk_tx("f", 0.1, 0.0, 0), mk_tx("b2", 0.1, 0.5, 0)],
            Some(ghost_victim.hash),
            0.6,
        );
        let built = b.build(
            &BuildInputs {
                base_fee: base(),
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &[], // victim not in this builder's view
                bundles: &[bundle],
            },
            &mut rng(),
        );
        assert!(built.txs.is_empty());
        assert_eq!(built.bundle_counts[0], 0);
    }

    #[test]
    fn conflicting_bundles_take_the_richer_one() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let victim = mk_tx("victim", 5.0, 0.0, 0);
        let cheap = mk_bundle(
            MevKind::Sandwich,
            vec![mk_tx("c1", 0.1, 0.05, 0), mk_tx("c2", 0.1, 0.05, 0)],
            Some(victim.hash),
            0.1,
        );
        let rich = mk_bundle(
            MevKind::Sandwich,
            vec![mk_tx("r1", 0.1, 0.4, 0), mk_tx("r2", 0.1, 0.4, 0)],
            Some(victim.hash),
            0.8,
        );
        let built = b.build(
            &BuildInputs {
                base_fee: base(),
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &[victim],
                bundles: &[cheap, rich],
            },
            &mut rng(),
        );
        assert_eq!(built.bundle_counts[0], 1);
        assert_eq!(built.txs[0].sender, Address::derive("r1"));
    }

    #[test]
    fn gas_limit_bounds_the_block() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let mempool: Vec<Transaction> = (0..10)
            .map(|i| mk_tx(&format!("t{i}"), 2.0, 0.0, 9_979_000))
            .collect();
        let built = b.build(
            &BuildInputs {
                base_fee: base(),
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &mempool,
                bundles: &[],
            },
            &mut rng(),
        );
        // 30M limit minus the 21k payment reservation fits two 10M txs.
        assert_eq!(built.txs.len(), 2);
        assert!(built.gas_used.0 <= Gas::BLOCK_LIMIT.0 - 21_000);
    }

    #[test]
    fn margin_policies() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        assert_eq!(b.margin_on(Wei::from_eth(1.0)), Wei::from_eth(0.001));
        // Fixed margin clamps to tiny blocks.
        assert_eq!(b.margin_on(Wei::from_eth(0.0001)), Wei::from_eth(0.0001));
        let b = builder(MarginPolicy::Share(0.07), SubsidyPolicy::Never);
        // Exact rational split of 1 ETH, avoiding float construction noise.
        assert_eq!(
            b.margin_on(Wei::from_eth(1.0)),
            Wei::from_eth(1.0).mul_ratio(700, 10_000)
        );
    }

    #[test]
    fn bid_combines_value_margin_subsidy() {
        let built = BuiltBlock {
            txs: vec![],
            value: Wei::from_eth(1.0),
            subsidy: Wei::from_eth(0.1),
            bundle_counts: [0; 3],
            gas_used: Gas::ZERO,
        };
        assert_eq!(built.bid(Wei::from_eth(0.2)), Wei::from_eth(0.9));
        // Margin larger than value: bid is just the subsidy.
        assert_eq!(built.bid(Wei::from_eth(2.0)), Wei::from_eth(0.1));
    }

    #[test]
    fn subsidy_policy_fires_at_configured_rate_and_scales_with_value() {
        let b = builder(
            MarginPolicy::FixedEth(0.0),
            SubsidyPolicy::Sometimes {
                prob: 0.3,
                median_frac: 0.2,
            },
        );
        let mempool = vec![mk_tx("payer", 10.0, 0.1, 0)];
        let mut hits = 0;
        let mut max_subsidy = Wei::ZERO;
        let mut r = rng();
        for _ in 0..2000 {
            let built = b.build(
                &BuildInputs {
                    base_fee: base(),
                    gas_limit: Gas::BLOCK_LIMIT,
                    mempool: &mempool,
                    bundles: &[],
                },
                &mut r,
            );
            if !built.subsidy.is_zero() {
                hits += 1;
                max_subsidy = max_subsidy.max(built.subsidy);
            }
        }
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "subsidy rate {rate}");
        // Subsidy is a bounded multiple of block value.
        let built_value = mempool[0].producer_value(base());
        assert!(max_subsidy <= built_value.mul_ratio(3, 1));
        // A builder with no block value never subsidizes (nothing to win).
        let mut empty_hits = 0;
        for _ in 0..200 {
            let built = b.build(
                &BuildInputs {
                    base_fee: base(),
                    gas_limit: Gas::BLOCK_LIMIT,
                    mempool: &[],
                    bundles: &[],
                },
                &mut r,
            );
            if !built.subsidy.is_zero() {
                empty_hits += 1;
            }
        }
        assert_eq!(empty_hits, 0);
    }

    #[test]
    fn censored_variant_strips_sanctioned_value() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let bad = Address::derive("sanctioned");
        let mut dirty = mk_tx("dirty", 10.0, 0.0, 0);
        dirty.to = bad;
        let dirty = dirty.finalize();
        let clean = mk_tx("clean", 5.0, 0.0, 0);
        let built = BuiltBlock {
            txs: vec![dirty.clone(), clean.clone()],
            value: dirty.producer_value(base()) + clean.producer_value(base()),
            subsidy: Wei::ZERO,
            bundle_counts: [0; 3],
            gas_used: dirty.gas_used() + clean.gas_used(),
        };
        let filtered = b.censored_variant(&built, base(), eth_types::DayIndex(0), |a| a == bad);
        assert_eq!(filtered.txs.len(), 1);
        assert_eq!(filtered.txs[0].hash, clean.hash);
        assert_eq!(filtered.value, clean.producer_value(base()));
        assert!(filtered.value < built.value);
    }

    #[test]
    fn payment_tx_follows_the_convention() {
        let mut b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let proposer = Address::derive("proposer-recipient");
        let pay = b.payment_tx(proposer, Wei::from_eth(0.08));
        assert_eq!(pay.sender, Address::derive("builder:test"));
        assert_eq!(pay.to, proposer);
        assert_eq!(pay.value, Wei::from_eth(0.08));
        // Nonces advance across payments.
        let pay2 = b.payment_tx(proposer, Wei::from_eth(0.08));
        assert_eq!(pay2.nonce, pay.nonce + 1);
    }

    #[test]
    fn builder_without_fee_recipient_pays_from_proposer_address() {
        let profile = BuilderProfile::new(
            "ghost",
            MarginPolicy::FixedEth(0.0),
            SubsidyPolicy::Never,
            0.5,
        )
        .without_fee_recipient();
        let mut b = Builder::new(BuilderId(1), profile);
        let proposer = Address::derive("proposer-recipient");
        let pay = b.payment_tx(proposer, Wei::from_eth(0.05));
        // Self-transfer: no detectable builder→proposer payment on chain.
        assert_eq!(pay.sender, proposer);
        assert_eq!(pay.to, proposer);
    }

    #[test]
    fn pubkeys_rotate_by_slot() {
        let b = builder(MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never);
        let k0 = b.pubkey_for_slot(Slot(0));
        let k1 = b.pubkey_for_slot(Slot(1));
        let k3 = b.pubkey_for_slot(Slot(3));
        assert_ne!(k0, k1);
        assert_eq!(k0, k3); // 3 keys rotate
    }
}
