//! OFAC sanctions machinery (paper §3.1 "Sanctioned Transactions", §6).
//!
//! Two distinct objects, and the gap between them is a headline finding:
//!
//! * [`SanctionsList`] — the *authoritative* list: addresses with the day
//!   they became effective ("we only consider an address sanctioned from
//!   the day after it was sanctioned by OFAC"). The paper's own scans use
//!   this.
//! * [`RelayBlacklist`] — a relay's *copy*, which lags: "new Ethereum
//!   addresses were added … on 8 November 2022, but the OFAC blacklist of
//!   the Flashbots relay was only updated on 10 November 2022", and the
//!   1 February 2023 additions were still missing on 1 May. Relays filter
//!   with the lagged copy, which is exactly why OFAC-compliant relays leak
//!   non-compliant blocks around list updates.

use crate::builder::BuiltBlock;
use eth_types::{Address, Block, DayIndex, Gas, GasPrice, Token, Transaction, TxEffect, Wei};
use std::collections::BTreeMap;

/// The day TRON became a sanctioned token (the November 2022 designation
/// the paper monitors all TRON transfers from, §3.1).
pub const TRON_SANCTIONED_FROM: DayIndex = DayIndex(54);

/// The authoritative sanctions list with effective days.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanctionsList {
    /// address → first day it counts as sanctioned.
    entries: BTreeMap<Address, DayIndex>,
}

impl SanctionsList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an address effective from `day` (exclusive of earlier days).
    pub fn add(&mut self, address: Address, effective: DayIndex) {
        self.entries
            .entry(address)
            .and_modify(|d| *d = (*d).min(effective))
            .or_insert(effective);
    }

    /// Whether `address` is sanctioned on `day`.
    pub fn is_sanctioned(&self, address: Address, day: DayIndex) -> bool {
        self.entries
            .get(&address)
            .map(|d| day >= *d)
            .unwrap_or(false)
    }

    /// All addresses effective on `day`.
    pub fn active_on(&self, day: DayIndex) -> Vec<Address> {
        self.entries
            .iter()
            .filter(|(_, d)| day >= **d)
            .map(|(a, _)| *a)
            .collect()
    }

    /// Total entries ever listed (the paper's Table 1 counts 134).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no addresses are listed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct days on which the list changed (update events).
    pub fn update_days(&self) -> Vec<DayIndex> {
        let mut days: Vec<DayIndex> = self.entries.values().copied().collect();
        days.sort();
        days.dedup();
        days
    }

    /// The day `address` became effective on the authoritative list, if
    /// it is listed at all.
    pub fn effective_day(&self, address: Address) -> Option<DayIndex> {
        self.entries.get(&address).copied()
    }
}

/// A relay's lagged snapshot of the sanctions list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayBlacklist {
    /// Days between an OFAC update and this relay adopting it.
    pub lag_days: u32,
    /// Updates on/after this day are never adopted (models the Flashbots
    /// blacklist that still missed the 1 Feb 2023 additions months later).
    pub ignore_updates_from: Option<DayIndex>,
}

impl RelayBlacklist {
    /// A blacklist applied with a fixed lag.
    pub fn with_lag(lag_days: u32) -> Self {
        RelayBlacklist {
            lag_days,
            ignore_updates_from: None,
        }
    }

    /// Whether this relay's copy lists `address` on `day`.
    pub fn lists(&self, source: &SanctionsList, address: Address, day: DayIndex) -> bool {
        // Find the address's effective day on the authoritative list, then
        // apply this relay's adoption lag.
        let Some(&effective) = source.entries.get(&address) else {
            return false;
        };
        self.adopts(effective, day)
    }

    /// Whether an update that became authoritative on `effective` has
    /// been adopted by this relay's copy by `day`. Antitone in
    /// `effective`: an earlier effective day is always at least as
    /// adopted as a later one, which is what lets [`CensorScan`] collapse
    /// a transaction's endpoints to their earliest effective day.
    pub fn adopts(&self, effective: DayIndex, day: DayIndex) -> bool {
        if let Some(cutoff) = self.ignore_updates_from {
            if effective >= cutoff {
                return false;
            }
        }
        day.0 >= effective.0 + self.lag_days
    }
}

/// What a censoring relay's filter strips from a scanned block: the
/// aggregate producer value and gas of the flagged transactions, plus
/// their count — enough to re-settle the block's bid by delta without
/// materializing the filtered transaction list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensorDelta {
    /// Producer value removed (folded with the same saturating sum the
    /// full rebuild uses, so the delta is bit-exact).
    pub value: Wei,
    /// Gas removed.
    pub gas: Gas,
    /// Number of transactions removed.
    pub removed: u32,
}

/// Per-transaction censorship facts for a built block, computed **once**
/// and reused to derive every censoring relay's variant incrementally —
/// the auction hot path no longer rescans and re-clones the block per
/// relay (ROADMAP item 4).
///
/// Correctness rests on two observations:
///
/// * [`RelayBlacklist::adopts`] is *antitone* in the effective day, so
///   the earliest effective day across a transaction's endpoints
///   (sender, destination, token-transfer recipient) decides whether
///   *any* endpoint is listed by a given relay copy on a given day.
/// * The TRON designation (§3.1) is relay-independent — every censoring
///   relay flags TRON transfers from [`TRON_SANCTIONED_FROM`] regardless
///   of its blacklist copy — so it is tracked as a separate flag.
///
/// The equivalence with [`crate::Builder::censored_variant`] is pinned
/// by a proptest (`censor_equivalence.rs`).
#[derive(Debug, Clone, Default)]
pub struct CensorScan {
    entries: Vec<CensorEntry>,
}

#[derive(Debug, Clone, Copy)]
struct CensorEntry {
    /// Earliest authoritative effective day across the transaction's
    /// endpoints; `None` when no endpoint is listed at all.
    effective: Option<DayIndex>,
    /// The transaction transfers the TRON token.
    tron: bool,
    /// Producer value at the scanned base fee.
    value: Wei,
    /// Gas the transaction uses.
    gas: Gas,
}

impl CensorScan {
    /// Scans `txs` once against the authoritative list at `base_fee`.
    pub fn of(txs: &[Transaction], base_fee: GasPrice, sanctions: &SanctionsList) -> CensorScan {
        let entries = txs
            .iter()
            .map(|t| {
                let mut effective = sanctions.effective_day(t.sender);
                let mut fold = |a: Address| {
                    if let Some(d) = sanctions.effective_day(a) {
                        effective = Some(effective.map_or(d, |e| e.min(d)));
                    }
                };
                fold(t.to);
                let mut tron = false;
                if let TxEffect::TokenTransfer { amount, recipient } = &t.effect {
                    fold(*recipient);
                    tron = amount.token == Token::Tron;
                }
                CensorEntry {
                    effective,
                    tron,
                    value: t.producer_value(base_fee),
                    gas: t.gas_used(),
                }
            })
            .collect();
        CensorScan { entries }
    }

    /// Number of transactions scanned.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the scanned block was empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether one entry is flagged under a relay's blacklist view.
    /// `None` models a censoring relay with no list copy (enshrined PBS):
    /// only the relay-independent TRON rule applies.
    fn flagged(e: &CensorEntry, blacklist: Option<&RelayBlacklist>, day: DayIndex) -> bool {
        if let (Some(effective), Some(bl)) = (e.effective, blacklist) {
            if bl.adopts(effective, day) {
                return true;
            }
        }
        e.tron && day >= TRON_SANCTIONED_FROM
    }

    /// What the given blacklist view removes from the scanned block on
    /// `day`, folded in transaction order with saturating arithmetic —
    /// bit-exact with the full rebuild's removed-value/gas sums.
    pub fn delta(&self, blacklist: Option<&RelayBlacklist>, day: DayIndex) -> CensorDelta {
        let mut value = Wei::ZERO;
        let mut gas = Gas::ZERO;
        let mut removed = 0u32;
        for e in &self.entries {
            if Self::flagged(e, blacklist, day) {
                value = value.saturating_add(e.value);
                gas = gas.saturating_add(e.gas);
                removed += 1;
            }
        }
        CensorDelta {
            value,
            gas,
            removed,
        }
    }

    /// Materializes the filtered variant of `built` for a blacklist view
    /// — byte-identical to [`crate::Builder::censored_variant`] with the
    /// relay's `blacklist_flags` predicate, but from the precomputed
    /// scan. `built` must be the block the scan was taken from.
    pub fn filter_block(
        &self,
        built: &BuiltBlock,
        blacklist: Option<&RelayBlacklist>,
        day: DayIndex,
    ) -> BuiltBlock {
        debug_assert_eq!(self.entries.len(), built.txs.len(), "scan/block mismatch");
        let d = self.delta(blacklist, day);
        let mut txs = Vec::with_capacity(built.txs.len().saturating_sub(d.removed as usize));
        for (e, t) in self.entries.iter().zip(&built.txs) {
            if !Self::flagged(e, blacklist, day) {
                txs.push(t.clone());
            }
        }
        BuiltBlock {
            txs,
            value: built.value.saturating_sub(d.value),
            subsidy: built.subsidy,
            bundle_counts: built.bundle_counts,
            gas_used: built.gas_used.saturating_sub(d.gas),
        }
    }
}

/// Whether a transaction touches a sanctioned address *pre-execution*
/// (sender, destination, or effect recipient) — the check builders and
/// relays can run before a block lands.
pub fn tx_touches_sanctioned<F: Fn(Address) -> bool>(tx: &Transaction, listed: F) -> bool {
    if listed(tx.sender) || listed(tx.to) {
        return true;
    }
    match &tx.effect {
        TxEffect::TokenTransfer { recipient, .. } => listed(*recipient),
        _ => false,
    }
}

/// Pre-execution scan including the TRON token designation: like
/// [`tx_touches_sanctioned`], plus any TRON transfer on/after `day`
/// [`TRON_SANCTIONED_FROM`].
pub fn tx_touches_sanctioned_on<F: Fn(Address) -> bool>(
    tx: &Transaction,
    day: DayIndex,
    listed: F,
) -> bool {
    if tx_touches_sanctioned(tx, listed) {
        return true;
    }
    if day >= TRON_SANCTIONED_FROM {
        if let TxEffect::TokenTransfer { amount, .. } = &tx.effect {
            return amount.token == Token::Tron;
        }
    }
    false
}

/// Whether a sealed block contains any non-OFAC-compliant transaction,
/// judged the way the paper does (§3.1): scan the traces for nonzero ETH
/// transfers touching a sanctioned address, the logs for monitored ERC-20
/// transfers from/to one, and — from its November 2022 designation — any
/// transfer of the TRON token at all.
pub fn block_touches_sanctioned(block: &Block, sanctions: &SanctionsList, day: DayIndex) -> bool {
    let listed = |a: Address| sanctions.is_sanctioned(a, day);
    for trace in &block.body.traces {
        if !trace.value.is_zero() && (listed(trace.from) || listed(trace.to)) {
            return true;
        }
    }
    let tron_live = day >= TRON_SANCTIONED_FROM;
    for receipt in &block.body.receipts {
        for log in &receipt.logs {
            if let Some((from, to, raw)) = log.decode_erc20_transfer() {
                if raw > 0 && (listed(from) || listed(to)) {
                    return true;
                }
                if raw > 0 && tron_live && log.address == Token::Tron.contract() {
                    return true;
                }
            }
        }
    }
    // The trace scan misses plain senders (a sanctioned sender of a
    // zero-value tx); check transaction endpoints too.
    block
        .body
        .transactions
        .iter()
        .any(|t| listed(t.sender) || listed(t.to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eth_types::{GasPrice, Token, TokenAmount, Wei};

    fn sanctioned_addr() -> Address {
        Address::derive("tornado-cash")
    }

    fn list() -> SanctionsList {
        let mut l = SanctionsList::new();
        l.add(sanctioned_addr(), DayIndex(10));
        l.add(Address::derive("lazarus"), DayIndex(54)); // ~8 Nov update
        l
    }

    #[test]
    fn effectiveness_day_is_respected() {
        let l = list();
        assert!(!l.is_sanctioned(sanctioned_addr(), DayIndex(9)));
        assert!(l.is_sanctioned(sanctioned_addr(), DayIndex(10)));
        assert!(l.is_sanctioned(sanctioned_addr(), DayIndex(100)));
        assert!(!l.is_sanctioned(Address::derive("innocent"), DayIndex(100)));
    }

    #[test]
    fn active_on_grows_with_time() {
        let l = list();
        assert_eq!(l.active_on(DayIndex(10)).len(), 1);
        assert_eq!(l.active_on(DayIndex(60)).len(), 2);
        assert_eq!(l.update_days(), vec![DayIndex(10), DayIndex(54)]);
    }

    #[test]
    fn re_adding_keeps_earliest_day() {
        let mut l = list();
        l.add(sanctioned_addr(), DayIndex(50));
        assert!(l.is_sanctioned(sanctioned_addr(), DayIndex(10)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn relay_blacklist_lags_adoption() {
        let l = list();
        let relay = RelayBlacklist::with_lag(2);
        // Day 54 update adopted on day 56 — the 8→10 Nov Flashbots gap.
        assert!(!relay.lists(&l, Address::derive("lazarus"), DayIndex(54)));
        assert!(!relay.lists(&l, Address::derive("lazarus"), DayIndex(55)));
        assert!(relay.lists(&l, Address::derive("lazarus"), DayIndex(56)));
    }

    #[test]
    fn stale_blacklist_never_adopts_late_updates() {
        let l = {
            let mut l = list();
            l.add(Address::derive("feb-designee"), DayIndex(139)); // 1 Feb 2023
            l
        };
        let relay = RelayBlacklist {
            lag_days: 2,
            ignore_updates_from: Some(DayIndex(139)),
        };
        assert!(relay.lists(&l, Address::derive("lazarus"), DayIndex(60)));
        // The February designee is never adopted, even months later.
        assert!(!relay.lists(&l, Address::derive("feb-designee"), DayIndex(197)));
    }

    #[test]
    fn censor_scan_agrees_with_the_predicate_scan_per_tx() {
        let l = list();
        let stale = RelayBlacklist {
            lag_days: 2,
            ignore_updates_from: Some(DayIndex(40)),
        };
        let lagged = RelayBlacklist::with_lag(2);
        let mk = |from: Address, to: Address| {
            Transaction::transfer(
                from,
                to,
                Wei::from_eth(1.0),
                0,
                GasPrice::from_gwei(1.0),
                GasPrice::from_gwei(30.0),
            )
            .finalize()
        };
        let clean = Address::derive("clean");
        let mut tron_tx = mk(clean, Token::Tron.contract());
        tron_tx.effect = TxEffect::TokenTransfer {
            amount: TokenAmount::from_units(Token::Tron, 5.0),
            recipient: clean,
        };
        let txs = vec![
            mk(clean, clean),
            mk(clean, sanctioned_addr()),          // effective day 10
            mk(Address::derive("lazarus"), clean), // effective day 54, past the stale cutoff
            tron_tx.finalize(),
        ];
        let base = GasPrice::from_gwei(10.0);
        for day in [0u32, 9, 10, 11, 12, 53, 54, 55, 56, 60, 200] {
            let day = DayIndex(day);
            for view in [None, Some(&stale), Some(&lagged)] {
                for t in &txs {
                    let expected = tx_touches_sanctioned_on(t, day, |a| {
                        view.is_some_and(|b| b.lists(&l, a, day))
                    });
                    let scan = CensorScan::of(std::slice::from_ref(t), base, &l);
                    let d = scan.delta(view, day);
                    assert_eq!(d.removed == 1, expected, "day {day:?} view {view:?}");
                    if expected {
                        assert_eq!(d.value, t.producer_value(base));
                        assert_eq!(d.gas, t.gas_used());
                    } else {
                        assert_eq!(
                            d,
                            CensorDelta {
                                value: Wei::ZERO,
                                gas: Gas::ZERO,
                                removed: 0
                            }
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tx_prescan_checks_endpoints_and_token_recipient() {
        let listed = |a: Address| a == sanctioned_addr();
        let clean = Transaction::transfer(
            Address::derive("a"),
            Address::derive("b"),
            Wei::from_eth(1.0),
            0,
            GasPrice::from_gwei(1.0),
            GasPrice::from_gwei(30.0),
        );
        assert!(!tx_touches_sanctioned(&clean, listed));

        let to_sanctioned = Transaction::transfer(
            Address::derive("a"),
            sanctioned_addr(),
            Wei::from_eth(1.0),
            0,
            GasPrice::from_gwei(1.0),
            GasPrice::from_gwei(30.0),
        );
        assert!(tx_touches_sanctioned(&to_sanctioned, listed));

        let mut token_tx = clean.clone();
        token_tx.to = Token::Usdc.contract();
        token_tx.effect = eth_types::TxEffect::TokenTransfer {
            amount: TokenAmount::from_units(Token::Usdc, 10.0),
            recipient: sanctioned_addr(),
        };
        assert!(tx_touches_sanctioned(&token_tx.finalize(), listed));
    }

    #[test]
    fn block_scan_finds_trace_and_log_hits() {
        use eth_types::{Slot, UnixTime, H256};
        use execution::{BlockExecutor, NullBackend, StateLedger};

        let l = list();
        let mut state = StateLedger::new(Wei::from_eth(100.0));
        // An ETH transfer to a sanctioned address plus a clean token move.
        let t1 = Transaction::transfer(
            Address::derive("user"),
            sanctioned_addr(),
            Wei::from_eth(2.0),
            0,
            GasPrice::from_gwei(1.0),
            GasPrice::from_gwei(30.0),
        );
        let block = BlockExecutor::default()
            .execute(
                Slot(0),
                0,
                UnixTime(0),
                H256::ZERO,
                Address::derive("b"),
                GasPrice::from_gwei(10.0),
                &[t1],
                &mut state,
                &mut NullBackend,
            )
            .block;
        assert!(block_touches_sanctioned(&block, &l, DayIndex(50)));
        // Before the effective day the same block is compliant.
        assert!(!block_touches_sanctioned(&block, &l, DayIndex(5)));
    }

    #[test]
    fn erc20_log_scan_detects_sanctioned_token_recipient() {
        use eth_types::{Slot, UnixTime, H256};
        use execution::{BlockExecutor, NullBackend, StateLedger};

        let l = list();
        let mut state = StateLedger::new(Wei::from_eth(100.0));
        let mut t = Transaction::transfer(
            Address::derive("user"),
            Token::Usdt.contract(),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(1.0),
            GasPrice::from_gwei(30.0),
        );
        t.effect = eth_types::TxEffect::TokenTransfer {
            amount: TokenAmount::from_units(Token::Usdt, 99.0),
            recipient: sanctioned_addr(),
        };
        let block = BlockExecutor::default()
            .execute(
                Slot(0),
                0,
                UnixTime(0),
                H256::ZERO,
                Address::derive("b"),
                GasPrice::from_gwei(10.0),
                &[t.finalize()],
                &mut state,
                &mut NullBackend,
            )
            .block;
        assert!(block_touches_sanctioned(&block, &l, DayIndex(50)));
    }
}
