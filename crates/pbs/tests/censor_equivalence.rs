//! The referee for the incremental censored-variant derivation: across
//! random mempools, OFAC lists, blacklist views, and base fees, deriving
//! a censoring relay's variant from a [`CensorScan`] must be
//! *byte-identical* to the full rebuild (`Builder::censored_variant`
//! with the relay's predicate), and the live auction's declared bids —
//! which are settled by delta, never materialized — must equal the bids
//! the full rebuild would have produced. A faults-on case pins the same
//! equivalence under relay outages and degradations.

use eth_types::{
    Address, DayIndex, Gas, GasPrice, Slot, Token, TokenAmount, Transaction, TxEffect, Wei,
};
use execution::Mempool;
use pbs::{
    BuildInputs, Builder, BuilderId, BuilderProfile, CensorScan, MarginPolicy, MevBoostClient,
    RelayBlacklist, RelayRegistry, SanctionsList, SlotAuction, SubsidyPolicy,
};
use proptest::prelude::*;
use simcore::{ComponentFaults, Health, SeedDomain};

/// A transaction over a small shared address universe so random OFAC
/// lists actually intersect endpoints: `effect` 0 = plain transfer,
/// 1 = USDC transfer to a universe recipient, 2 = TRON transfer.
fn mk_tx(
    i: usize,
    sender: u8,
    to: u8,
    tip_deci_gwei: u32,
    bribe_milli_eth: u32,
    effect: u8,
    recipient: u8,
) -> Transaction {
    let mut t = Transaction::transfer(
        Address::derive(&format!("addr{sender}")),
        Address::derive(&format!("addr{to}")),
        Wei::from_eth(0.01),
        i as u64,
        GasPrice::from_gwei(tip_deci_gwei as f64 / 10.0),
        GasPrice::from_gwei(2000.0),
    );
    t.coinbase_tip = Wei::from_eth(bribe_milli_eth as f64 / 1000.0);
    match effect {
        1 => {
            t.effect = TxEffect::TokenTransfer {
                amount: TokenAmount::from_units(Token::Usdc, 25.0),
                recipient: Address::derive(&format!("addr{recipient}")),
            };
        }
        2 => {
            t.effect = TxEffect::TokenTransfer {
                amount: TokenAmount::from_units(Token::Tron, 25.0),
                recipient: Address::derive(&format!("addr{recipient}")),
            };
        }
        _ => {}
    }
    t.finalize()
}

fn mk_sanctions(entries: &[(u8, u32)]) -> SanctionsList {
    let mut l = SanctionsList::new();
    for &(a, day) in entries {
        l.add(Address::derive(&format!("addr{a}")), DayIndex(day));
    }
    l
}

// The vendored proptest implements tuple strategies up to arity 4, so
// the per-tx spec nests pairs: (endpoints, fees, effect).
type TxSpec = ((u8, u8), (u32, u32), (u8, u8));

fn mempool_strategy() -> impl Strategy<Value = Vec<TxSpec>> {
    proptest::collection::vec(
        (
            (0u8..10, 0u8..10),
            (1u32..500, 0u32..200),
            (0u8..3, 0u8..10),
        ),
        0..30,
    )
}

fn sanctions_strategy() -> impl Strategy<Value = Vec<(u8, u32)>> {
    proptest::collection::vec((0u8..10, 0u32..80), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Core equivalence: for any built block, blacklist view, and day,
    /// `CensorScan::filter_block` is byte-identical to the full rebuild,
    /// and `CensorScan::delta` settles the same value/gas/bid without
    /// materializing anything.
    #[test]
    fn scan_derivation_matches_full_rebuild(
        txs in mempool_strategy(),
        listed in sanctions_strategy(),
        base_gwei in 1u32..60,
        day in 0u32..100,
        lag in 0u32..6,
        cutoff_raw in 0u32..120,
        seed in any::<u64>(),
    ) {
        let sanctions = mk_sanctions(&listed);
        let day = DayIndex(day);
        let base = GasPrice::from_gwei(base_gwei as f64);
        // Raw draws ≥ 90 mean "no staleness cutoff" (the vendored
        // proptest has no Option strategy).
        let cutoff = (cutoff_raw < 90).then_some(DayIndex(cutoff_raw));
        let bl = RelayBlacklist { lag_days: lag, ignore_updates_from: cutoff };

        let builder = Builder::new(
            BuilderId(0),
            BuilderProfile::new("eq", MarginPolicy::Share(0.02), SubsidyPolicy::Never, 1.0),
        );
        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, &((s, to), (tip, bribe), (fx, r)))| mk_tx(i, s, to, tip, bribe, fx, r))
            .collect();
        let mut rng = SeedDomain::new(seed).rng("build");
        let built = builder.build(
            &BuildInputs {
                base_fee: base,
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &mempool,
                bundles: &[],
            },
            &mut rng,
        );

        let scan = CensorScan::of(&built.txs, base, &sanctions);

        // A relay with a lagged (possibly stale) blacklist copy.
        let full = builder.censored_variant(&built, base, day, |a| bl.lists(&sanctions, a, day));
        let inc = scan.filter_block(&built, Some(&bl), day);
        prop_assert_eq!(&full, &inc, "scan variant must be byte-identical to full rebuild");

        let delta = scan.delta(Some(&bl), day);
        prop_assert_eq!(built.value.saturating_sub(delta.value), full.value);
        prop_assert_eq!(built.gas_used.saturating_sub(delta.gas), full.gas_used);
        prop_assert_eq!(delta.removed as usize, built.txs.len() - full.txs.len());
        let value = built.value.saturating_sub(delta.value);
        prop_assert_eq!(
            built.bid_at(value, builder.margin_on(value)),
            full.bid(builder.margin_on(full.value)),
            "delta-settled bid must equal the full rebuild's bid"
        );

        // A censoring relay with no list copy at all (enshrined PBS):
        // only the relay-independent TRON rule applies.
        let full_bare = builder.censored_variant(&built, base, day, |_| false);
        let inc_bare = scan.filter_block(&built, None, day);
        prop_assert_eq!(&full_bare, &inc_bare);
    }

    /// End-to-end: with bid jitter forced to zero, every declared bid the
    /// live (incremental) auction submits equals the bid a full per-relay
    /// rebuild produces, healthy or faulted, and the winning PBS block is
    /// exactly the full rebuild's filtered transaction list.
    #[test]
    fn auction_bids_match_full_rebuild(
        txs in mempool_strategy(),
        listed in sanctions_strategy(),
        day in 0u32..100,
        seed in any::<u64>(),
        faulted in any::<bool>(),
    ) {
        let sanctions = mk_sanctions(&listed);
        let seeds = SeedDomain::new(seed);
        let mut relays = RelayRegistry::paper(&seeds);
        let fb = relays.id_by_name("Flashbots"); // censoring, stale copy
        let eden = relays.id_by_name("Eden");    // censoring, lagged copy
        let us = relays.id_by_name("UltraSound"); // not censoring

        if faulted {
            relays.get_mut(eden).unwrap().faults = ComponentFaults {
                health: Health::Down,
                ..ComponentFaults::default()
            };
            relays.get_mut(us).unwrap().faults = ComponentFaults {
                health: Health::Degraded,
                stale_response: true,
                ..ComponentFaults::default()
            };
        }

        let mut profile = BuilderProfile::new(
            "eq-auction",
            MarginPolicy::Share(0.015),
            SubsidyPolicy::Never,
            1.0,
        );
        profile.relays = vec![fb, eden, us];
        let mut builders = vec![Builder::new(BuilderId(0), profile)];

        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, &((s, to), (tip, bribe), (fx, r)))| mk_tx(i, s, to, tip, bribe, fx, r))
            .collect();

        let auction = SlotAuction {
            slot: Slot(9),
            day: DayIndex(day),
            base_fee: GasPrice::from_gwei(12.0),
            gas_limit: Gas::BLOCK_LIMIT,
            sanctions: &sanctions,
            // Zero decay: declared bids are exactly the pre-jitter
            // variant bids, so they can be checked against a rebuild.
            jitter_zero_prob: 1.0,
            jitter_max_frac: 0.0,
            timing: None,
            chaos: None,
        };
        let client = MevBoostClient::new(vec![fb]);
        let pool = Mempool::new(64);
        let auction_seeds = seeds.subdomain("auction");
        let result = auction.run(
            &mut builders,
            &[Vec::new()],
            &mempool,
            &mut relays,
            Some(&client),
            Address::derive("proposer"),
            &pool,
            &[],
            &auction_seeds,
            None,
        );

        // Reference: rebuild the candidate from the same seed stream and
        // derive every relay's variant the slow way.
        let mut build_rng = auction_seeds.stream("build", 0);
        let built = builders[0].build(
            &BuildInputs {
                base_fee: auction.base_fee,
                gas_limit: auction.gas_limit,
                mempool: &mempool,
                bundles: &[],
            },
            &mut build_rng,
        );
        prop_assert_eq!(result.submissions.len(), 3);
        for sub in &result.submissions {
            let relay = relays.get(sub.relay).unwrap();
            let expected = if relay.info.ofac_compliant {
                let full = builders[0].censored_variant(&built, auction.base_fee, auction.day, |a| {
                    relay.blacklist_flags(&sanctions, a, auction.day)
                });
                full.bid(builders[0].margin_on(full.value))
            } else {
                built.bid(builders[0].margin_on(built.value))
            };
            prop_assert_eq!(
                sub.declared_bid, expected,
                "declared bid for relay {} must match the full rebuild",
                relay.info.name
            );
        }

        // The winning block (when PBS wins via the censoring Flashbots
        // relay) is the full rebuild's filtered list plus the payment tx.
        if result.pbs {
            let relay = relays.get(fb).unwrap();
            let full = builders[0].censored_variant(&built, auction.base_fee, auction.day, |a| {
                relay.blacklist_flags(&sanctions, a, auction.day)
            });
            prop_assert_eq!(result.txs.len(), full.txs.len() + 1);
            prop_assert_eq!(&result.txs[..full.txs.len()], &full.txs[..]);
            prop_assert_eq!(result.bundle_counts, full.bundle_counts);
        }
    }
}
