//! Property tests for the streamed auction's timing semantics.
//!
//! Four laws pin the intra-slot microstructure:
//!
//! 1. **Bid-book totality** — the winner at the deadline is exactly the
//!    maximum eligible, non-cancelled bid (with the documented
//!    deterministic tie-break).
//! 2. **Cancellation monotonicity** — a cancelled bid never wins, at any
//!    query instant, under any staleness policy.
//! 3. **Latency causality** — a bid arriving after the relay's
//!    eligibility deadline never appears in any `getHeader` view.
//! 4. **One-shot equivalence** — the degenerate timed configuration
//!    (every builder bids once at t=0 over zero-latency channels)
//!    reproduces the legacy auction bid-for-bid.
//!
//! Plus snapshot round-trips for the new timing state (strategies,
//! timing parameters, book entries).

use eth_types::{Address, BlsPublicKey, DayIndex, Gas, GasPrice, Slot, Transaction, Wei};
use execution::Mempool;
use mev::Bundle;
use pbs::ofac::SanctionsList;
use pbs::relay::AcceptedBid;
use pbs::{
    BidStrategy, Builder, BuilderId, BuilderProfile, MarginPolicy, MevBoostClient, RelayRegistry,
    SlotAuction, SlotResult, StrategyKind, Submission, SubsidyPolicy, TimingParams,
};
use proptest::prelude::*;
use simcore::{SeedDomain, SimTime, SnapReader, SnapWriter, Snapshot};

const DEADLINE_MS: u64 = 12_000;
const CUTOFF_MS: u64 = 11_000;

fn roundtrip<T: Snapshot + PartialEq + std::fmt::Debug>(value: &T) {
    let mut w = SnapWriter::new();
    value.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = SnapReader::new(&bytes);
    let back = T::decode(&mut r).expect("decodes");
    r.expect_end().expect("no trailing bytes");
    assert_eq!(&back, value);
}

fn submission(builder: u32, declared: Wei) -> Submission {
    Submission {
        slot: Slot(1),
        builder: BuilderId(builder),
        pubkey: BlsPublicKey::derive(&format!("key:{builder}")),
        declared_bid: declared,
        true_bid: declared,
        sandwich_count: 0,
        flagged_by_blacklist: false,
    }
}

/// A permissionless, non-censoring, non-filtering relay: every honest
/// bid passes the gates, so acceptance is decided by timing alone.
fn open_registry() -> (RelayRegistry, pbs::RelayId) {
    let reg = RelayRegistry::paper(&SeedDomain::new(77));
    let us = reg.id_by_name("UltraSound");
    (reg, us)
}

proptest! {
    /// Law 1: the book view at the deadline equals the model winner —
    /// max declared bid over accepted, non-cancelled, in-time entries,
    /// ties to the lower builder id then earlier arrival-order index.
    #[test]
    fn winner_is_the_max_eligible_noncancelled_bid(
        bids in proptest::collection::vec(
            (1u64..1_000_000, 0u64..15_000, any::<bool>(), 0u64..12_000),
            1..24,
        )
    ) {
        let (mut reg, us) = open_registry();
        let relay = reg.get_mut(us).unwrap();
        let deadline = SimTime::from_millis(DEADLINE_MS);
        let cutoff = SimTime::from_millis(CUTOFF_MS);

        // Model book: (builder, declared, live).
        let mut model: Vec<(u32, Wei, bool)> = Vec::new();
        for (i, &(value, arrive_ms, do_cancel, cancel_delay)) in bids.iter().enumerate() {
            let cancel = do_cancel.then_some(cancel_delay);
            let b = i as u32 % 5;
            let declared = Wei(value as u128);
            let arrival = SimTime::from_millis(arrive_ms);
            let accepted = relay.consider_timed(submission(b, declared), DayIndex(0), arrival, deadline);
            prop_assert_eq!(accepted, arrive_ms <= DEADLINE_MS);
            if !accepted {
                continue;
            }
            let mut live = true;
            if let Some(cancel_ms) = cancel {
                let took = relay.cancel_timed(
                    BuilderId(b),
                    declared,
                    arrival.plus_millis(cancel_ms),
                    cutoff,
                );
                // The cancel lands iff it reaches the relay in time; it
                // always matches (the bid was just accepted, and ours is
                // the most recent live entry with this exact value).
                prop_assert_eq!(took, arrive_ms + cancel_ms <= CUTOFF_MS);
                live = !took;
            }
            model.push((b, declared, live));
        }

        let expect = model
            .iter()
            .enumerate()
            .filter(|(_, &(_, _, live))| live)
            .max_by(|(ia, (ba, va, _)), (ib, (bb, vb, _))| {
                va.cmp(vb).then_with(|| bb.cmp(ba)).then_with(|| ib.cmp(ia))
            })
            .map(|(_, &(b, v, _))| (BuilderId(b), v));
        let got = relay
            .book_view_at(deadline)
            .map(|a| (a.submission.builder, a.submission.declared_bid));
        prop_assert_eq!(got, expect);
    }

    /// Law 2: once a cancel has taken effect, that bid wins no view —
    /// at any query instant, healthy or degraded-stale.
    #[test]
    fn cancelled_bids_never_win(
        bids in proptest::collection::vec((1u64..1_000_000, 0u64..11_000), 2..16),
        victim in 0usize..16,
        lag in 0u64..5_000,
        probe in 0u64..20_000,
    ) {
        let (mut reg, us) = open_registry();
        let relay = reg.get_mut(us).unwrap();
        let deadline = SimTime::from_millis(DEADLINE_MS);
        let cutoff = SimTime::from_millis(CUTOFF_MS);

        // Distinct values so the cancelled bid is identifiable.
        for (i, &(value, arrive_ms)) in bids.iter().enumerate() {
            let declared = Wei(value as u128 * 32 + i as u128);
            relay.consider_timed(
                submission(i as u32, declared),
                DayIndex(0),
                SimTime::from_millis(arrive_ms),
                deadline,
            );
        }
        let victim = victim % bids.len();
        let (value, arrive_ms) = bids[victim];
        let cancelled_bid = Wei(value as u128 * 32 + victim as u128);
        let took = relay.cancel_timed(
            BuilderId(victim as u32),
            cancelled_bid,
            SimTime::from_millis(arrive_ms),
            cutoff,
        );
        prop_assert!(took, "an in-time cancel of an accepted bid must land");

        let loses_at = |view: Option<&AcceptedBid>| {
            view.map(|a| (a.submission.builder, a.submission.declared_bid))
                != Some((BuilderId(victim as u32), cancelled_bid))
        };
        let probe = SimTime::from_millis(probe);
        prop_assert!(loses_at(relay.book_view_at(probe)));
        prop_assert!(loses_at(relay.serve_header_at(probe, lag)));
        relay.faults.health = simcore::Health::Degraded;
        relay.faults.stale_response = true;
        prop_assert!(loses_at(relay.serve_header_at(probe, lag)));
    }

    /// Law 3: a bid that reaches the relay after the eligibility
    /// deadline is rejected outright and never surfaces in any view.
    #[test]
    fn late_bids_never_appear_in_any_view(
        ontime in proptest::collection::vec((1u64..1_000, 0u64..12_001), 0..8),
        late in proptest::collection::vec((1u64..1_000, 12_001u64..30_000), 1..8),
        lag in 0u64..5_000,
        probe in 0u64..40_000,
    ) {
        let (mut reg, us) = open_registry();
        let relay = reg.get_mut(us).unwrap();
        let deadline = SimTime::from_millis(DEADLINE_MS);

        for (i, &(value, arrive_ms)) in ontime.iter().enumerate() {
            relay.consider_timed(
                submission(i as u32, Wei::from_gwei(value)),
                DayIndex(0),
                SimTime::from_millis(arrive_ms),
                deadline,
            );
        }
        // Late bids dwarf every on-time bid — if one leaked into the
        // book it would instantly win every view.
        for (i, &(value, arrive_ms)) in late.iter().enumerate() {
            let accepted = relay.consider_timed(
                submission(i as u32, Wei::from_eth(value as f64)),
                DayIndex(0),
                SimTime::from_millis(arrive_ms),
                deadline,
            );
            prop_assert!(!accepted, "late bid at {arrive_ms}ms accepted");
        }

        let ceiling = Wei::from_gwei(1_000);
        let probe = SimTime::from_millis(probe);
        for best in [relay.book_view_at(probe), relay.serve_header_at(probe, lag)]
            .into_iter()
            .flatten()
        {
            prop_assert!(best.submission.declared_bid < ceiling);
        }
    }

    /// Law 4: the degenerate timed configuration (one bid per builder at
    /// t=0, zero latency everywhere) reproduces the legacy one-shot
    /// auction bid-for-bid: same submissions, same winner, same block.
    #[test]
    fn degenerate_timed_config_matches_one_shot(
        seed in 0u64..1_000,
        tips in proptest::collection::vec(1u64..200, 1..10),
        margins in proptest::collection::vec(1u64..50, 2..5),
    ) {
        let run = |timed: bool| -> SlotResult {
            let mut relays = RelayRegistry::paper(&SeedDomain::new(seed));
            let us = relays.id_by_name("UltraSound");
            let fb = relays.id_by_name("Flashbots");
            let mut builders: Vec<Builder> = margins
                .iter()
                .enumerate()
                .map(|(i, &m)| {
                    let mut profile = BuilderProfile::new(
                        &format!("b{i}"),
                        MarginPolicy::FixedEth(m as f64 * 1e-4),
                        SubsidyPolicy::Never,
                        1.0,
                    );
                    profile.relays = vec![us, fb];
                    Builder::new(BuilderId(i as u32), profile)
                })
                .collect();
            let mempool: Vec<Transaction> = tips
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    Transaction::transfer(
                        Address::derive(&format!("t{i}")),
                        Address::derive("sink"),
                        Wei::from_eth(0.1),
                        0,
                        GasPrice::from_gwei(t as f64),
                        GasPrice::from_gwei(1000.0),
                    )
                })
                .collect();
            let sanctions = SanctionsList::new();
            let tp = TimingParams::one_shot_degenerate(builders.len(), relays.len());
            let auction = SlotAuction {
                slot: Slot(7),
                day: DayIndex(20),
                base_fee: GasPrice::from_gwei(10.0),
                gas_limit: Gas::BLOCK_LIMIT,
                sanctions: &sanctions,
                jitter_zero_prob: 0.2,
                jitter_max_frac: 0.05,
                timing: if timed { Some(&tp) } else { None },
                chaos: None,
            };
            let bundles: Vec<Vec<Bundle>> = builders.iter().map(|_| Vec::new()).collect();
            let client = MevBoostClient::new(vec![us, fb]);
            let pool = Mempool::new(64);
            auction.run(
                &mut builders,
                &bundles,
                &mempool,
                &mut relays,
                Some(&client),
                Address::derive("proposer"),
                &pool,
                &[],
                &SeedDomain::new(seed).subdomain("auction"),
                None,
            )
        };
        let legacy = run(false);
        let timed = run(true);

        prop_assert_eq!(&timed.submissions, &legacy.submissions);
        prop_assert_eq!(timed.builder, legacy.builder);
        prop_assert_eq!(timed.pubkey, legacy.pubkey);
        prop_assert_eq!(&timed.winning_relays, &legacy.winning_relays);
        prop_assert_eq!(timed.promised, legacy.promised);
        prop_assert_eq!(timed.delivered, legacy.delivered);
        prop_assert_eq!(&timed.txs, &legacy.txs);
        prop_assert_eq!(&timed.events, &legacy.events);
        prop_assert_eq!(timed.pbs, legacy.pbs);
        prop_assert_eq!(timed.missed, legacy.missed);
        // The only allowed divergence: the timed run carries a trace.
        let trace = timed.timing.expect("timed run records a trace");
        prop_assert!(legacy.timing.is_none());
        prop_assert_eq!(trace.cancels, 0);
        prop_assert_eq!(trace.late_bids, 0);
        let accepted = legacy.submissions.iter().filter(|s| s.accepted).count() as u32;
        prop_assert_eq!(trace.bids, accepted);
    }

    /// New timing state survives snapshot round-trips.
    #[test]
    fn timing_state_round_trips(
        tick in 1u64..5_000,
        lats in proptest::collection::vec(0u64..500, 0..8),
        strat_picks in proptest::collection::vec((0u8..3, 1u32..8, 50u64..500, 100u64..900), 0..8),
    ) {
        let strategies: Vec<BidStrategy> = strat_picks
            .iter()
            .map(|&(tag, rebids, lead, permille)| match tag {
                0 => BidStrategy::Naive { rebids },
                1 => BidStrategy::Sniper { lead_ms: lead },
                _ => BidStrategy::Canceller { rebid_permille: permille as u16 },
            })
            .collect();
        for s in &strategies {
            roundtrip(s);
            roundtrip(&s.kind());
        }
        let tp = TimingParams {
            tick_ms: tick,
            bid_deadline_ms: DEADLINE_MS,
            cancel_cutoff_ms: CUTOFF_MS,
            header_query_ms: DEADLINE_MS,
            staleness_lag_ms: 2_000,
            accrual_floor_permille: 350,
            builder_latency_ms: lats.clone(),
            relay_extra_ms: lats,
            strategies,
        };
        roundtrip(&tp);
    }
}

/// Non-property check: the strategy names written into CSV artifacts are
/// the stable public vocabulary the analysis layer keys on.
#[test]
fn strategy_vocabulary_is_stable() {
    assert_eq!(StrategyKind::Naive.name(), "naive");
    assert_eq!(StrategyKind::Sniper.name(), "sniper");
    assert_eq!(StrategyKind::Canceller.name(), "canceller");
}
