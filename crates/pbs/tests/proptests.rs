//! Property tests for the PBS mechanism: auction invariants under random
//! mempools and builder configurations.

use eth_types::{Address, DayIndex, Gas, GasPrice, Slot, Transaction, Wei};
use execution::Mempool;
use pbs::{
    Builder, BuilderId, BuilderProfile, MarginPolicy, MevBoostClient, RelayRegistry, SanctionsList,
    SlotAuction, SubsidyPolicy,
};
use proptest::prelude::*;
use simcore::SeedDomain;

fn mk_tx(i: usize, tip_deci_gwei: u32, bribe_milli_eth: u32) -> Transaction {
    let mut t = Transaction::transfer(
        Address::derive(&format!("sender{i}")),
        Address::derive("sink"),
        Wei::from_eth(0.01),
        0,
        GasPrice::from_gwei(tip_deci_gwei as f64 / 10.0),
        GasPrice::from_gwei(2000.0),
    );
    t.coinbase_tip = Wei::from_eth(bribe_milli_eth as f64 / 1000.0);
    t.finalize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any mempool and any margin, the auction's invariants hold:
    /// delivered ≤ promised, the payment tx is last and carries exactly
    /// the delivered value, and submissions are recorded per relay.
    #[test]
    fn auction_invariants(
        txs in proptest::collection::vec((1u32..500, 0u32..200), 0..25),
        margin_bp in 0u32..2_000,
        seed in any::<u64>(),
    ) {
        let seeds = SeedDomain::new(seed);
        let mut relays = RelayRegistry::paper(&seeds);
        let us = relays.id_by_name("UltraSound");
        let gn = relays.id_by_name("GnosisDAO");

        let mut profile = BuilderProfile::new(
            "prop-builder",
            MarginPolicy::Share(margin_bp as f64 / 10_000.0),
            SubsidyPolicy::Never,
            1.0,
        );
        profile.relays = vec![us, gn];
        let mut builders = vec![Builder::new(BuilderId(0), profile)];

        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, (tip, bribe))| mk_tx(i, *tip, *bribe))
            .collect();

        let sanctions = SanctionsList::new();
        let auction = SlotAuction {
            slot: Slot(5),
            day: DayIndex(10),
            base_fee: GasPrice::from_gwei(10.0),
            gas_limit: Gas::BLOCK_LIMIT,
            sanctions: &sanctions,
            jitter_zero_prob: 0.2,
            jitter_max_frac: 0.05,
        };
        let client = MevBoostClient::new(vec![us, gn]);
        let pool = Mempool::new(64);
        let auction_seeds = seeds.subdomain("auction");
        let result = auction.run(
            &mut builders,
            &[Vec::new()],
            &mempool,
            &mut relays,
            Some(&client),
            Address::derive("proposer"),
            &pool,
            &[],
            &auction_seeds,
            None,
        );

        prop_assert!(result.pbs);
        prop_assert!(result.delivered <= result.promised);
        // Submissions: one per connected relay.
        prop_assert_eq!(result.submissions.len(), 2);
        // The payment tx is last, to the proposer, worth the delivered value.
        let last = result.txs.last().unwrap();
        prop_assert_eq!(last.to, Address::derive("proposer"));
        prop_assert_eq!(last.value, result.delivered);
        // All mempool txs in the block appear before the payment.
        let position_of_payment = result.txs.len() - 1;
        for (i, tx) in result.txs.iter().enumerate() {
            if i != position_of_payment {
                prop_assert!(mempool.iter().any(|m| m.hash == tx.hash));
            }
        }
    }

    /// Censored variants never contain listed transactions and never gain
    /// value.
    #[test]
    fn censored_variant_is_clean_and_cheaper(
        txs in proptest::collection::vec((1u32..100, any::<bool>()), 1..30),
        seed in any::<u64>(),
    ) {
        let seeds = SeedDomain::new(seed);
        let bad = Address::derive("listed");
        let builder = Builder::new(
            BuilderId(0),
            BuilderProfile::new("c", MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never, 1.0),
        );
        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, (tip, dirty))| {
                let mut t = mk_tx(i, *tip, 0);
                if *dirty {
                    t.to = bad;
                }
                t.finalize()
            })
            .collect();
        let base = GasPrice::from_gwei(10.0);
        let built = builder.build(
            &pbs::BuildInputs {
                base_fee: base,
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &mempool,
                bundles: &[],
            },
            &mut seeds.rng("c"),
        );
        let filtered = builder.censored_variant(&built, base, DayIndex(10), |a| a == bad);
        prop_assert!(filtered.txs.iter().all(|t| t.to != bad));
        prop_assert!(filtered.value <= built.value);
        prop_assert!(filtered.gas_used <= built.gas_used);
        // Clean txs survive filtering.
        let clean_in = built.txs.iter().filter(|t| t.to != bad).count();
        prop_assert_eq!(filtered.txs.len(), clean_in);
    }

    /// The blacklist lag: for any update day and lag, the relay copy flags
    /// an address exactly `lag` days after the authoritative list does.
    #[test]
    fn blacklist_lag_is_exact(effective in 0u32..190, lag in 0u32..10, probe in 0u32..198) {
        let mut list = SanctionsList::new();
        let a = Address::derive("x");
        list.add(a, DayIndex(effective));
        let relay = pbs::RelayBlacklist::with_lag(lag);
        let authoritative = probe >= effective;
        let relay_view = relay.lists(&list, a, DayIndex(probe));
        prop_assert_eq!(relay_view, probe >= effective + lag);
        if relay_view {
            prop_assert!(authoritative, "relay can never be ahead of OFAC");
        }
    }
}
