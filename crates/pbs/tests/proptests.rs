//! Property tests for the PBS mechanism: auction invariants under random
//! mempools and builder configurations.

use eth_types::{Address, BlsPublicKey, DayIndex, Gas, GasPrice, Slot, Transaction, Wei};
use execution::Mempool;
use pbs::{
    BoostEvent, BreakerBank, BreakerPolicy, BreakerState, Builder, BuilderChaos, BuilderId,
    BuilderProfile, MarginPolicy, MevBoostClient, RelayId, RelayRegistry, SanctionsList,
    SlotAuction, SlotChaos, Submission, SubsidyPolicy,
};
use proptest::prelude::*;
use simcore::{Health, SeedDomain};

fn mk_tx(i: usize, tip_deci_gwei: u32, bribe_milli_eth: u32) -> Transaction {
    let mut t = Transaction::transfer(
        Address::derive(&format!("sender{i}")),
        Address::derive("sink"),
        Wei::from_eth(0.01),
        0,
        GasPrice::from_gwei(tip_deci_gwei as f64 / 10.0),
        GasPrice::from_gwei(2000.0),
    );
    t.coinbase_tip = Wei::from_eth(bribe_milli_eth as f64 / 1000.0);
    t.finalize()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any mempool and any margin, the auction's invariants hold:
    /// delivered ≤ promised, the payment tx is last and carries exactly
    /// the delivered value, and submissions are recorded per relay.
    #[test]
    fn auction_invariants(
        txs in proptest::collection::vec((1u32..500, 0u32..200), 0..25),
        margin_bp in 0u32..2_000,
        seed in any::<u64>(),
    ) {
        let seeds = SeedDomain::new(seed);
        let mut relays = RelayRegistry::paper(&seeds);
        let us = relays.id_by_name("UltraSound");
        let gn = relays.id_by_name("GnosisDAO");

        let mut profile = BuilderProfile::new(
            "prop-builder",
            MarginPolicy::Share(margin_bp as f64 / 10_000.0),
            SubsidyPolicy::Never,
            1.0,
        );
        profile.relays = vec![us, gn];
        let mut builders = vec![Builder::new(BuilderId(0), profile)];

        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, (tip, bribe))| mk_tx(i, *tip, *bribe))
            .collect();

        let sanctions = SanctionsList::new();
        let auction = SlotAuction {
            slot: Slot(5),
            day: DayIndex(10),
            base_fee: GasPrice::from_gwei(10.0),
            gas_limit: Gas::BLOCK_LIMIT,
            sanctions: &sanctions,
            jitter_zero_prob: 0.2,
            jitter_max_frac: 0.05,
            timing: None,
            chaos: None,
        };
        let client = MevBoostClient::new(vec![us, gn]);
        let pool = Mempool::new(64);
        let auction_seeds = seeds.subdomain("auction");
        let result = auction.run(
            &mut builders,
            &[Vec::new()],
            &mempool,
            &mut relays,
            Some(&client),
            Address::derive("proposer"),
            &pool,
            &[],
            &auction_seeds,
            None,
        );

        prop_assert!(result.pbs);
        prop_assert!(result.delivered <= result.promised);
        // Submissions: one per connected relay.
        prop_assert_eq!(result.submissions.len(), 2);
        // The payment tx is last, to the proposer, worth the delivered value.
        let last = result.txs.last().unwrap();
        prop_assert_eq!(last.to, Address::derive("proposer"));
        prop_assert_eq!(last.value, result.delivered);
        // All mempool txs in the block appear before the payment.
        let position_of_payment = result.txs.len() - 1;
        for (i, tx) in result.txs.iter().enumerate() {
            if i != position_of_payment {
                prop_assert!(mempool.iter().any(|m| m.hash == tx.hash));
            }
        }
    }

    /// Censored variants never contain listed transactions and never gain
    /// value.
    #[test]
    fn censored_variant_is_clean_and_cheaper(
        txs in proptest::collection::vec((1u32..100, any::<bool>()), 1..30),
        seed in any::<u64>(),
    ) {
        let seeds = SeedDomain::new(seed);
        let bad = Address::derive("listed");
        let builder = Builder::new(
            BuilderId(0),
            BuilderProfile::new("c", MarginPolicy::FixedEth(0.001), SubsidyPolicy::Never, 1.0),
        );
        let mempool: Vec<Transaction> = txs
            .iter()
            .enumerate()
            .map(|(i, (tip, dirty))| {
                let mut t = mk_tx(i, *tip, 0);
                if *dirty {
                    t.to = bad;
                }
                t.finalize()
            })
            .collect();
        let base = GasPrice::from_gwei(10.0);
        let built = builder.build(
            &pbs::BuildInputs {
                base_fee: base,
                gas_limit: Gas::BLOCK_LIMIT,
                mempool: &mempool,
                bundles: &[],
            },
            &mut seeds.rng("c"),
        );
        let filtered = builder.censored_variant(&built, base, DayIndex(10), |a| a == bad);
        prop_assert!(filtered.txs.iter().all(|t| t.to != bad));
        prop_assert!(filtered.value <= built.value);
        prop_assert!(filtered.gas_used <= built.gas_used);
        // Clean txs survive filtering.
        let clean_in = built.txs.iter().filter(|t| t.to != bad).count();
        prop_assert_eq!(filtered.txs.len(), clean_in);
    }

    /// The blacklist lag: for any update day and lag, the relay copy flags
    /// an address exactly `lag` days after the authoritative list does.
    #[test]
    fn blacklist_lag_is_exact(effective in 0u32..190, lag in 0u32..10, probe in 0u32..198) {
        let mut list = SanctionsList::new();
        let a = Address::derive("x");
        list.add(a, DayIndex(effective));
        let relay = pbs::RelayBlacklist::with_lag(lag);
        let authoritative = probe >= effective;
        let relay_view = relay.lists(&list, a, DayIndex(probe));
        prop_assert_eq!(relay_view, probe >= effective + lag);
        if relay_view {
            prop_assert!(authoritative, "relay can never be ahead of OFAC");
        }
    }
}

/// One relay's randomly drawn fault state for the propose() properties:
/// `((down, wasted_attempts), (stale, payload_failure, bid_milli_eth))`.
/// Nested because the vendored proptest implements `Strategy` for tuples
/// only up to arity 4.
type RelayFaultCase = ((bool, u32), (bool, bool, u32));

fn faulted_registry(cases: &[RelayFaultCase]) -> (RelayRegistry, Vec<pbs::RelayId>) {
    let seeds = SeedDomain::new(7);
    let mut relays = RelayRegistry::paper(&seeds);
    let names = ["Aestus", "UltraSound", "GnosisDAO", "Flashbots"];
    let ids: Vec<_> = cases
        .iter()
        .enumerate()
        .map(|(i, _)| relays.id_by_name(names[i]))
        .collect();
    for (i, ((down, wasted), (stale, payload_failure, bid))) in cases.iter().enumerate() {
        let relay = relays.get_mut(ids[i]).unwrap();
        // Bids arrive while the relay is still up.
        relay.consider(
            Submission {
                slot: Slot(1),
                builder: BuilderId(i as u32),
                pubkey: BlsPublicKey::derive(&format!("k{i}")),
                declared_bid: Wei::from_eth(*bid as f64 / 1000.0),
                true_bid: Wei::from_eth(*bid as f64 / 1000.0),
                sandwich_count: 0,
                flagged_by_blacklist: false,
            },
            DayIndex(0),
        );
        // Then the fault state for the proposal round. A down relay burns
        // every retry, exactly as FaultSchedule encodes outages.
        if *down {
            relay.faults.health = Health::Down;
            relay.faults.wasted_attempts = u32::MAX;
            relay.faults.payload_failure = true;
        } else {
            relay.faults.health = if *wasted > 0 || *stale {
                Health::Degraded
            } else {
                Health::Healthy
            };
            relay.faults.wasted_attempts = *wasted;
            relay.faults.stale_response = *stale;
            relay.faults.payload_failure = *payload_failure;
        }
    }
    (relays, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any combination of relay faults, the proposal round keeps its
    /// safety and liveness invariants: never two signed headers, always a
    /// definite outcome (payload, self-build, or a properly attributed
    /// missed slot), deterministic reports, and a fallback order that
    /// follows the signed header's relay list.
    #[test]
    fn propose_invariants_under_faults(
        cases in proptest::collection::vec(
            (
                (any::<bool>(), 0u32..6),
                (any::<bool>(), any::<bool>(), 1u32..100),
            ),
            1..=4,
        ),
    ) {
        let (relays, ids) = faulted_registry(&cases);
        let client = MevBoostClient::new(ids.clone());
        let report = client.propose(&relays);

        // Safety: a validator signs at most one header per slot.
        let signed = report
            .events
            .iter()
            .filter(|e| matches!(e, BoostEvent::HeaderSigned { .. }))
            .count();
        prop_assert!(signed <= 1);

        // Totality: exactly one terminal outcome is recorded.
        let terminal = report
            .events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    BoostEvent::SelfBuild
                        | BoostEvent::PayloadDelivered { .. }
                        | BoostEvent::SlotMissed { .. }
                )
            })
            .count();
        prop_assert_eq!(terminal, 1);

        // Attribution: `SlotMissed` is emitted iff the report is a miss,
        // and never more than once. The fault audit counts missed slots
        // from these events, so a rescued slot emitting a stray
        // `SlotMissed` would double-count in `fault_audit.csv`.
        let missed_events = report
            .events
            .iter()
            .filter(|e| matches!(e, BoostEvent::SlotMissed { .. }))
            .count();
        prop_assert_eq!(missed_events, report.missed as usize);

        // Liveness: there is always a block unless a header was signed and
        // every relay carrying it failed to deliver the payload.
        match (&report.choice, report.payload_relay) {
            (None, None) => {
                prop_assert!(!report.missed);
                prop_assert!(report.events.contains(&BoostEvent::SelfBuild));
            }
            (Some(choice), Some(delivering)) => {
                prop_assert!(!report.missed);
                // Fallback order: the delivering relay is the FIRST carrier
                // of the winning header whose payload path works.
                let first_working = choice
                    .relays
                    .iter()
                    .copied()
                    .find(|rid| !relays.get(*rid).unwrap().faults.payload_failure);
                prop_assert_eq!(Some(delivering), first_working);
            }
            (Some(choice), None) => {
                prop_assert!(report.missed, "signed header with no payload is a miss");
                for rid in &choice.relays {
                    prop_assert!(
                        relays.get(*rid).unwrap().faults.payload_failure,
                        "a miss requires every carrying relay's payload to fail"
                    );
                }
            }
            (None, Some(_)) => prop_assert!(false, "payload without a signed header"),
        }

        // Determinism: the same registry state reproduces the same report,
        // events included.
        prop_assert_eq!(client.propose(&relays), report);
    }

    /// A fully healthy registry never times out, never misses, and always
    /// delivers through the primary carrier — the fault machinery is
    /// invisible when no fault is injected.
    #[test]
    fn healthy_relays_never_miss(
        bids in proptest::collection::vec(1u32..100, 1..=4),
    ) {
        let cases: Vec<RelayFaultCase> =
            bids.iter().map(|b| ((false, 0), (false, false, *b))).collect();
        let (relays, ids) = faulted_registry(&cases);
        let client = MevBoostClient::new(ids);
        let report = client.propose(&relays);
        prop_assert!(!report.missed);
        prop_assert!(report.payload_relay.is_some());
        prop_assert!(report.events.iter().all(|e| matches!(
            e,
            BoostEvent::HeaderSigned { .. } | BoostEvent::PayloadDelivered { .. }
        )));
        let choice = report.choice.as_ref().unwrap();
        prop_assert_eq!(report.payload_relay, Some(choice.relays[0]));
    }
}

/// A deliberately naive mirror of one relay's breaker, written straight
/// from the policy's prose: trip Open after `trip_failures` consecutive
/// admitted failures, probe HalfOpen once `open_slots` have elapsed,
/// close again after `probe_successes` clean probes. The property tests
/// check [`BreakerBank`] against this model slot by slot.
#[derive(Clone, Copy)]
struct MirrorBreaker {
    state: BreakerState,
    fails: u32,
    opened_at: u64,
    probes: u32,
}

impl MirrorBreaker {
    fn new() -> Self {
        MirrorBreaker {
            state: BreakerState::Closed,
            fails: 0,
            opened_at: 0,
            probes: 0,
        }
    }

    /// Whether the relay is admitted this slot (mutating Open→HalfOpen
    /// when the cooldown has expired, exactly as `admit` documents).
    fn admit(&mut self, slot: u64, policy: &BreakerPolicy) -> bool {
        match self.state {
            BreakerState::Open if slot >= self.opened_at + policy.open_slots => {
                self.state = BreakerState::HalfOpen;
                self.probes = 0;
                true
            }
            BreakerState::Open => false,
            BreakerState::Closed | BreakerState::HalfOpen => true,
        }
    }

    fn observe(&mut self, slot: u64, failed: bool, policy: &BreakerPolicy) {
        match (self.state, failed) {
            (BreakerState::Closed, true) => {
                self.fails += 1;
                if self.fails >= policy.trip_failures {
                    self.state = BreakerState::Open;
                    self.opened_at = slot;
                }
            }
            (BreakerState::Closed, false) => self.fails = 0,
            (BreakerState::HalfOpen, true) => {
                self.state = BreakerState::Open;
                self.opened_at = slot;
                self.probes = 0;
            }
            (BreakerState::HalfOpen, false) => {
                self.probes += 1;
                if self.probes >= policy.probe_successes {
                    self.state = BreakerState::Closed;
                    self.fails = 0;
                    self.probes = 0;
                }
            }
            (BreakerState::Open, _) => {}
        }
    }
}

/// Synthesizes the failure-class event the bank should count against
/// `relay`, cycling through all four classes so each one is exercised.
fn failure_event(slot: u64, relay: RelayId) -> BoostEvent {
    match (slot + relay.0 as u64) % 4 {
        0 => BoostEvent::RelayUnreachable { relay },
        1 => BoostEvent::StaleHeader { relay },
        2 => BoostEvent::PayloadFailed { relay },
        _ => BoostEvent::ShortfallInjected {
            relay,
            promised: Wei::from_eth(0.1),
            delivered: Wei::from_eth(0.05),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any policy and any per-slot failure pattern, the breaker bank
    /// tracks the naive reference model exactly — same admitted/skipped
    /// split every slot, same per-relay state — and replaying the same
    /// trail on a fresh bank reproduces the identical transition log.
    #[test]
    fn breaker_bank_matches_the_reference_model(
        trip in 1u32..4,
        open_slots in 1u64..5,
        probe_successes in 1u32..3,
        fails in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let policy = BreakerPolicy { trip_failures: trip, open_slots, probe_successes };
        let relays = [RelayId(0), RelayId(1)];
        let mut bank = BreakerBank::new(policy, relays.len());
        let mut mirror = [MirrorBreaker::new(), MirrorBreaker::new()];
        // The trail the bank actually saw, replayed verbatim below.
        let mut trail: Vec<(u64, Vec<RelayId>, Vec<BoostEvent>)> = Vec::new();

        for (slot, &(f0, f1)) in fails.iter().enumerate() {
            let slot = slot as u64;
            let (admitted, skipped) = bank.admit(slot, &relays);
            let mirror_admitted: Vec<RelayId> = relays
                .iter()
                .zip(mirror.iter_mut())
                .filter_map(|(&rid, m)| m.admit(slot, &policy).then_some(rid))
                .collect();
            prop_assert_eq!(&admitted, &mirror_admitted, "admit split at slot {}", slot);
            for rid in &skipped {
                prop_assert_eq!(bank.state(*rid), BreakerState::Open);
            }

            let mut events = Vec::new();
            for &rid in &admitted {
                let failed = if rid.0 == 0 { f0 } else { f1 };
                if failed {
                    events.push(failure_event(slot, rid));
                } else {
                    // Success is the *absence* of a failure class; benign
                    // events about the same relay must not count.
                    events.push(BoostEvent::PayloadDelivered { relay: rid });
                }
            }
            bank.observe(slot, &admitted, &events);
            for (&rid, m) in relays.iter().zip(mirror.iter_mut()) {
                if admitted.contains(&rid) {
                    let failed = if rid.0 == 0 { f0 } else { f1 };
                    m.observe(slot, failed, &policy);
                }
                prop_assert_eq!(bank.state(rid), m.state, "state of relay {} after slot {}", rid.0, slot);
            }
            trail.push((slot, admitted, events));
        }

        // Transitions are well-formed: every hop changes state, and each
        // relay's hops chain (the `to` of one is the `from` of the next).
        let transitions = bank.drain_transitions();
        let mut last: [BreakerState; 2] = [BreakerState::Closed; 2];
        for t in &transitions {
            prop_assert_ne!(t.from, t.to);
            prop_assert_eq!(t.from, last[t.relay.0 as usize]);
            last[t.relay.0 as usize] = t.to;
        }
        for (&rid, s) in relays.iter().zip(last.iter()) {
            prop_assert_eq!(bank.state(rid), *s);
        }

        // Determinism: a fresh bank fed the recorded trail lands on the
        // identical transition log and final states.
        let mut replay = BreakerBank::new(policy, relays.len());
        for (slot, admitted, events) in &trail {
            let (re_admitted, _) = replay.admit(*slot, &relays);
            prop_assert_eq!(&re_admitted, admitted, "replay diverged at slot {}", slot);
            replay.observe(*slot, admitted, events);
        }
        prop_assert_eq!(replay.drain_transitions(), transitions);
        for &rid in &relays {
            prop_assert_eq!(replay.state(rid), bank.state(rid));
        }
    }

    /// Builder crashes never break proposal safety: whatever subset of
    /// builders is down, the slot signs at most one header, crashed
    /// builders submit nothing anywhere, and the whole resolution is
    /// deterministic.
    #[test]
    fn one_signed_header_per_slot_under_builder_crashes(
        crashed in proptest::collection::vec(any::<bool>(), 1..=4),
        txs in proptest::collection::vec((1u32..300, 0u32..100), 1..12),
        seed in any::<u64>(),
    ) {
        let run_once = || {
            let seeds = SeedDomain::new(seed);
            let mut relays = RelayRegistry::paper(&seeds);
            let us = relays.id_by_name("UltraSound");
            let gn = relays.id_by_name("GnosisDAO");

            let mut builders: Vec<Builder> = crashed
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let mut profile = BuilderProfile::new(
                        &format!("crashy{i}"),
                        MarginPolicy::Share(0.05),
                        SubsidyPolicy::Never,
                        1.0,
                    );
                    profile.relays = vec![us, gn];
                    Builder::new(BuilderId(i as u32), profile)
                })
                .collect();
            let mempool: Vec<Transaction> = txs
                .iter()
                .enumerate()
                .map(|(i, (tip, bribe))| mk_tx(i, *tip, *bribe))
                .collect();
            let chaos = SlotChaos {
                builders: crashed
                    .iter()
                    .map(|&c| BuilderChaos { crashed: c, ..BuilderChaos::default() })
                    .collect(),
                net: None,
            };

            let sanctions = SanctionsList::new();
            let auction = SlotAuction {
                slot: Slot(5),
                day: DayIndex(10),
                base_fee: GasPrice::from_gwei(10.0),
                gas_limit: Gas::BLOCK_LIMIT,
                sanctions: &sanctions,
                jitter_zero_prob: 0.2,
                jitter_max_frac: 0.05,
                timing: None,
                chaos: Some(&chaos),
            };
            let client = MevBoostClient::new(vec![us, gn]);
            let pool = Mempool::new(64);
            let bundles = vec![Vec::new(); builders.len()];
            auction.run(
                &mut builders,
                &bundles,
                &mempool,
                &mut relays,
                Some(&client),
                Address::derive("proposer"),
                &pool,
                &[],
                &seeds.subdomain("auction"),
                None,
            )
        };
        let result = run_once();

        // Safety: at most one signed header, regardless of who crashed.
        let signed = result
            .events
            .iter()
            .filter(|e| matches!(e, BoostEvent::HeaderSigned { .. }))
            .count();
        prop_assert!(signed <= 1);

        // A crashed builder submits nothing to any relay, and can never
        // win; survivors all submit to both relays.
        let alive = crashed.iter().filter(|c| !**c).count();
        for s in &result.submissions {
            prop_assert!(!crashed[s.builder.0 as usize], "crashed builder submitted");
        }
        prop_assert_eq!(result.submissions.len(), 2 * alive);
        if let Some(winner) = result.builder {
            prop_assert!(!crashed[winner.0 as usize], "crashed builder won");
        }

        // With every builder down the slot degrades to a local build —
        // never a miss.
        if alive == 0 {
            prop_assert!(!result.pbs);
            prop_assert!(!result.missed);
            prop_assert!(signed == 0);
            prop_assert_eq!(result.fee_recipient, Address::derive("proposer"));
        }
        prop_assert!(result.delivered <= result.promised);

        // Determinism: the identical crash pattern resolves identically.
        prop_assert_eq!(run_once(), result);
    }
}
