//! The price oracle.
//!
//! Lending positions are valued at oracle prices; "a position of a lending
//! protocol becomes available for liquidation once the price oracle
//! updates" (paper, Appendix D). Prices are kept in milli-USD per whole
//! token so the oracle is exact-integer and deterministic.

use eth_types::Token;
use std::collections::BTreeMap;

/// Token prices in milli-USD per whole token.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriceOracle {
    prices: BTreeMap<Token, u64>,
}

impl PriceOracle {
    /// Creates an oracle seeded with each token's reference price.
    pub fn with_reference_prices(tokens: impl Iterator<Item = Token>) -> Self {
        let mut prices = BTreeMap::new();
        for t in tokens {
            prices.insert(t, (t.reference_usd() * 1000.0).round() as u64);
        }
        PriceOracle { prices }
    }

    /// Current price in milli-USD, `None` if the token is unlisted.
    pub fn price_milli_usd(&self, token: Token) -> Option<u64> {
        self.prices.get(&token).copied()
    }

    /// Current price in USD as f64 (0 if unlisted).
    pub fn price_usd(&self, token: Token) -> f64 {
        self.price_milli_usd(token).unwrap_or(0) as f64 / 1000.0
    }

    /// Sets a token's price.
    pub fn set_price_milli_usd(&mut self, token: Token, price: u64) {
        self.prices.insert(token, price);
    }

    /// Applies a relative move, e.g. `-0.05` for a 5% drop.
    pub fn apply_move(&mut self, token: Token, fraction: f64) {
        if let Some(p) = self.prices.get_mut(&token) {
            let next = (*p as f64 * (1.0 + fraction)).max(0.0);
            *p = next.round() as u64;
        }
    }

    /// USD value of a raw token amount.
    pub fn value_usd(&self, token: Token, raw: u128) -> f64 {
        let units = raw as f64 / 10f64.powi(token.decimals() as i32);
        units * self.price_usd(token)
    }

    /// Number of listed tokens.
    pub fn len(&self) -> usize {
        self.prices.len()
    }

    /// True if nothing is listed.
    pub fn is_empty(&self) -> bool {
        self.prices.is_empty()
    }
}

impl simcore::Snapshot for PriceOracle {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.prices.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(PriceOracle {
            prices: simcore::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> PriceOracle {
        PriceOracle::with_reference_prices(Token::MONITORED.into_iter())
    }

    #[test]
    fn reference_prices_seeded() {
        let o = oracle();
        assert_eq!(o.price_milli_usd(Token::Weth), Some(1_500_000));
        assert_eq!(o.price_milli_usd(Token::Usdc), Some(1_000));
        assert_eq!(o.price_usd(Token::Wbtc), 20_000.0);
    }

    #[test]
    fn unlisted_token_has_no_price() {
        let o = oracle();
        assert_eq!(o.price_milli_usd(Token::LongTail(0)), None);
        assert_eq!(o.price_usd(Token::LongTail(0)), 0.0);
    }

    #[test]
    fn relative_moves_apply() {
        let mut o = oracle();
        o.apply_move(Token::Usdc, -0.12); // the depeg
        assert_eq!(o.price_milli_usd(Token::Usdc), Some(880));
        o.apply_move(Token::LongTail(5), 0.5); // unlisted: no-op
        assert_eq!(o.price_milli_usd(Token::LongTail(5)), None);
    }

    #[test]
    fn value_usd_respects_decimals() {
        let o = oracle();
        // 2 WETH = 3000 USD.
        let v = o.value_usd(Token::Weth, 2 * 10u128.pow(18));
        assert!((v - 3000.0).abs() < 1e-6);
        // 500 USDC = 500 USD (6 decimals).
        let v = o.value_usd(Token::Usdc, 500 * 10u128.pow(6));
        assert!((v - 500.0).abs() < 1e-6);
    }

    #[test]
    fn price_never_goes_negative() {
        let mut o = oracle();
        o.apply_move(Token::Tron, -2.0);
        assert_eq!(o.price_milli_usd(Token::Tron), Some(0));
    }
}
