//! The lending market.
//!
//! Borrowers post collateral in one token and draw debt in another. A
//! position's *health factor* is `collateral_value × liquidation_threshold
//! / debt_value`; once it drops below 1 (an oracle move), anyone may repay
//! the debt and seize the collateral plus a bonus — the *liquidation* MEV
//! the paper counts in Figure 22. Each liquidation emits an Aave-style
//! `LiquidationCall` log.

use crate::oracle::PriceOracle;
use eth_types::{pad_address, Address, Log, Token};

/// Fraction of collateral value that can back debt (e.g. 0.8 = 80% LTV cap,
/// used here directly as the liquidation threshold).
pub const LIQUIDATION_THRESHOLD: f64 = 0.80;

/// Liquidator bonus on seized collateral (8%).
pub const LIQUIDATION_BONUS: f64 = 0.08;

/// Errors from market operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LendingError {
    /// Unknown borrower.
    NoPosition(Address),
    /// Position is healthy; cannot liquidate.
    Healthy {
        /// Its current health factor.
        health: f64,
    },
}

impl std::fmt::Display for LendingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LendingError::NoPosition(a) => write!(f, "no position for {a}"),
            LendingError::Healthy { health } => {
                write!(f, "position healthy (health factor {health:.3})")
            }
        }
    }
}

impl std::error::Error for LendingError {}

/// A borrower's position.
#[derive(Debug, Clone, PartialEq)]
pub struct Position {
    /// Borrower address.
    pub borrower: Address,
    /// Collateral token.
    pub collateral_token: Token,
    /// Collateral amount (smallest units).
    pub collateral: u128,
    /// Debt token.
    pub debt_token: Token,
    /// Debt amount (smallest units).
    pub debt: u128,
}

impl Position {
    /// Health factor at current oracle prices. `f64::INFINITY` with no debt.
    pub fn health(&self, oracle: &PriceOracle) -> f64 {
        let debt_value = oracle.value_usd(self.debt_token, self.debt);
        if debt_value <= 0.0 {
            return f64::INFINITY;
        }
        let collateral_value = oracle.value_usd(self.collateral_token, self.collateral);
        collateral_value * LIQUIDATION_THRESHOLD / debt_value
    }
}

/// Decoded payload of a `LiquidationCall` log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiquidationLogData {
    /// Market id.
    pub market: u32,
    /// Debt repaid (smallest units of the debt token).
    pub debt_repaid: u128,
    /// Collateral seized (smallest units of the collateral token).
    pub collateral_seized: u128,
}

impl LiquidationLogData {
    /// Encodes into log `data` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(36);
        out.extend_from_slice(&self.market.to_be_bytes());
        out.extend_from_slice(&self.debt_repaid.to_be_bytes());
        out.extend_from_slice(&self.collateral_seized.to_be_bytes());
        out
    }

    /// Decodes from log `data` bytes.
    pub fn decode(data: &[u8]) -> Option<LiquidationLogData> {
        if data.len() != 36 {
            return None;
        }
        Some(LiquidationLogData {
            market: u32::from_be_bytes(data[0..4].try_into().ok()?),
            debt_repaid: u128::from_be_bytes(data[4..20].try_into().ok()?),
            collateral_seized: u128::from_be_bytes(data[20..36].try_into().ok()?),
        })
    }
}

/// Outcome of a successful liquidation.
#[derive(Debug, Clone, PartialEq)]
pub struct LiquidationOutcome {
    /// The emitted `LiquidationCall` log.
    pub log: Log,
    /// Liquidator's profit expressed in USD (bonus value minus nothing —
    /// gas is paid at the transaction layer).
    pub profit_usd: f64,
}

/// A single-market lending protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct LendingMarket {
    /// Market id.
    pub id: u32,
    positions: Vec<Position>,
}

impl LendingMarket {
    /// Creates an empty market.
    pub fn new(id: u32) -> Self {
        LendingMarket {
            id,
            positions: Vec::new(),
        }
    }

    /// The market's deterministic contract address.
    pub fn contract(&self) -> Address {
        Address::derive(&format!("lending:{}", self.id))
    }

    /// Opens (or replaces) a borrower's position.
    pub fn open_position(&mut self, position: Position) {
        self.positions.retain(|p| p.borrower != position.borrower);
        self.positions.push(position);
    }

    /// Looks up a borrower's position.
    pub fn position(&self, borrower: Address) -> Option<&Position> {
        self.positions.iter().find(|p| p.borrower == borrower)
    }

    /// Number of open positions.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the market has no positions.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// All borrowers whose health factor is below 1 — what liquidation bots
    /// scan for after every oracle update.
    pub fn liquidatable(&self, oracle: &PriceOracle) -> Vec<Address> {
        self.positions
            .iter()
            .filter(|p| p.health(oracle) < 1.0)
            .map(|p| p.borrower)
            .collect()
    }

    /// Liquidates `borrower`: repays up to half the debt, seizes equivalent
    /// collateral plus the bonus, closes the position if it empties.
    pub fn liquidate(
        &mut self,
        liquidator: Address,
        borrower: Address,
        oracle: &PriceOracle,
    ) -> Result<LiquidationOutcome, LendingError> {
        let idx = self
            .positions
            .iter()
            .position(|p| p.borrower == borrower)
            .ok_or(LendingError::NoPosition(borrower))?;
        let health = self.positions[idx].health(oracle);
        if health >= 1.0 {
            return Err(LendingError::Healthy { health });
        }

        let p = &mut self.positions[idx];
        let repay = p.debt / 2 + p.debt % 2; // close factor 50%, round up
        let repay_value = oracle.value_usd(p.debt_token, repay);
        let seize_value = repay_value * (1.0 + LIQUIDATION_BONUS);
        let collateral_price = oracle.price_usd(p.collateral_token);
        let collateral_units = if collateral_price > 0.0 {
            seize_value / collateral_price
        } else {
            0.0
        };
        let seize_raw = ((collateral_units * 10f64.powi(p.collateral_token.decimals() as i32))
            as u128)
            .min(p.collateral);

        p.debt -= repay;
        p.collateral -= seize_raw;
        let market = self.id;
        let data = LiquidationLogData {
            market,
            debt_repaid: repay,
            collateral_seized: seize_raw,
        };
        let log = Log {
            address: self.contract(),
            topics: vec![
                Log::liquidation_topic(),
                pad_address(liquidator),
                pad_address(borrower),
            ],
            data: data.encode(),
        };
        let seized_value = oracle.value_usd(self.positions[idx].collateral_token, seize_raw);
        if self.positions[idx].debt == 0 {
            self.positions.remove(idx);
        }
        Ok(LiquidationOutcome {
            log,
            profit_usd: (seized_value - repay_value).max(0.0),
        })
    }
}

impl simcore::Snapshot for Position {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.borrower.encode(w);
        self.collateral_token.encode(w);
        self.collateral.encode(w);
        self.debt_token.encode(w);
        self.debt.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(Position {
            borrower: simcore::Snapshot::decode(r)?,
            collateral_token: simcore::Snapshot::decode(r)?,
            collateral: simcore::Snapshot::decode(r)?,
            debt_token: simcore::Snapshot::decode(r)?,
            debt: simcore::Snapshot::decode(r)?,
        })
    }
}

impl simcore::Snapshot for LendingMarket {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.id.encode(w);
        self.positions.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(LendingMarket {
            id: simcore::Snapshot::decode(r)?,
            positions: simcore::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> PriceOracle {
        PriceOracle::with_reference_prices(Token::MONITORED.into_iter())
    }

    fn healthy_position() -> Position {
        // 10 WETH collateral (=15k USD) backing 10k USDC debt:
        // health = 15000*0.8/10000 = 1.2.
        Position {
            borrower: Address::derive("borrower"),
            collateral_token: Token::Weth,
            collateral: 10 * 10u128.pow(18),
            debt_token: Token::Usdc,
            debt: 10_000 * 10u128.pow(6),
        }
    }

    #[test]
    fn health_factor_math() {
        let p = healthy_position();
        assert!((p.health(&oracle()) - 1.2).abs() < 1e-9);
    }

    #[test]
    fn no_debt_means_infinite_health() {
        let mut p = healthy_position();
        p.debt = 0;
        assert_eq!(p.health(&oracle()), f64::INFINITY);
    }

    #[test]
    fn healthy_position_cannot_be_liquidated() {
        let mut m = LendingMarket::new(0);
        m.open_position(healthy_position());
        let o = oracle();
        assert!(m.liquidatable(&o).is_empty());
        let err = m
            .liquidate(Address::derive("liq"), Address::derive("borrower"), &o)
            .unwrap_err();
        assert!(matches!(err, LendingError::Healthy { .. }));
    }

    #[test]
    fn oracle_drop_makes_position_liquidatable() {
        let mut m = LendingMarket::new(0);
        m.open_position(healthy_position());
        let mut o = oracle();
        o.apply_move(Token::Weth, -0.25); // 1500 → 1125: health 0.9
        let targets = m.liquidatable(&o);
        assert_eq!(targets, vec![Address::derive("borrower")]);
    }

    #[test]
    fn liquidation_repays_half_and_seizes_with_bonus() {
        let mut m = LendingMarket::new(0);
        m.open_position(healthy_position());
        let mut o = oracle();
        o.apply_move(Token::Weth, -0.25);
        let out = m
            .liquidate(Address::derive("liq"), Address::derive("borrower"), &o)
            .unwrap();
        // Repaid 5000 USDC; seized 5400 USD of WETH at 1125 → 4.8 WETH.
        let data = LiquidationLogData::decode(&out.log.data).unwrap();
        assert_eq!(data.debt_repaid, 5_000 * 10u128.pow(6));
        let seized_weth = data.collateral_seized as f64 / 1e18;
        assert!((seized_weth - 4.8).abs() < 0.001, "seized {seized_weth}");
        assert!(
            (out.profit_usd - 400.0).abs() < 1.0,
            "profit {}",
            out.profit_usd
        );
        // Position remains with half debt.
        let p = m.position(Address::derive("borrower")).unwrap();
        assert_eq!(p.debt, 5_000 * 10u128.pow(6));
    }

    #[test]
    fn liquidation_log_round_trips_and_names_parties() {
        let mut m = LendingMarket::new(3);
        m.open_position(healthy_position());
        let mut o = oracle();
        o.apply_move(Token::Weth, -0.30);
        let out = m
            .liquidate(Address::derive("liq"), Address::derive("borrower"), &o)
            .unwrap();
        assert_eq!(out.log.topics[0], Log::liquidation_topic());
        assert_eq!(
            eth_types::log::unpad_address(&out.log.topics[1]),
            Address::derive("liq")
        );
        assert_eq!(
            eth_types::log::unpad_address(&out.log.topics[2]),
            Address::derive("borrower")
        );
        let d = LiquidationLogData::decode(&out.log.data).unwrap();
        assert_eq!(d.market, 3);
    }

    #[test]
    fn unknown_borrower_is_an_error() {
        let mut m = LendingMarket::new(0);
        let err = m
            .liquidate(Address::derive("liq"), Address::derive("ghost"), &oracle())
            .unwrap_err();
        assert_eq!(err, LendingError::NoPosition(Address::derive("ghost")));
    }

    #[test]
    fn reopening_replaces_position() {
        let mut m = LendingMarket::new(0);
        m.open_position(healthy_position());
        let mut p2 = healthy_position();
        p2.debt = 1;
        m.open_position(p2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.position(Address::derive("borrower")).unwrap().debt, 1);
    }

    #[test]
    fn seize_is_capped_at_collateral() {
        let mut m = LendingMarket::new(0);
        let mut p = healthy_position();
        p.collateral = 10u128.pow(17); // only 0.1 WETH
        m.open_position(p);
        let o = oracle(); // health way below 1 now
        let out = m
            .liquidate(Address::derive("liq"), Address::derive("borrower"), &o)
            .unwrap();
        let d = LiquidationLogData::decode(&out.log.data).unwrap();
        assert!(d.collateral_seized <= 10u128.pow(17));
    }
}
