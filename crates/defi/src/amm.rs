//! Constant-product AMM pools (Uniswap-V2 math).
//!
//! Swaps preserve `reserve0 × reserve1 = k` modulo the 0.3% LP fee, so every
//! trade moves the marginal price — the order dependence that makes
//! sandwich attacks and cyclic arbitrage possible. Each executed swap emits
//! a `Swap` log whose payload ([`SwapLogData`]) the MEV detectors decode.

use eth_types::{pad_address, Address, Log, Token};

/// Identifier of a pool within the DeFi world.
pub type PoolId = u32;

/// LP fee in basis points (0.3%, the Uniswap-V2 default).
pub const AMM_FEE_BPS: u128 = 30;

/// Errors from pool operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmmError {
    /// The pool does not trade the requested token.
    WrongToken(Token),
    /// Output would fall below the caller's `min_out` bound.
    Slippage {
        /// What the pool can deliver.
        available: u128,
        /// What the caller demanded.
        min_out: u128,
    },
    /// Zero-amount swap.
    ZeroAmount,
    /// The input is so large the fixed-point math would overflow; no real
    /// trade is this big (constant-product pools cannot be drained anyway).
    InsufficientLiquidity,
}

impl std::fmt::Display for AmmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AmmError::WrongToken(t) => write!(f, "pool does not trade {t}"),
            AmmError::Slippage { available, min_out } => {
                write!(f, "slippage: can deliver {available}, need {min_out}")
            }
            AmmError::ZeroAmount => write!(f, "zero-amount swap"),
            AmmError::InsufficientLiquidity => write!(f, "insufficient liquidity"),
        }
    }
}

impl std::error::Error for AmmError {}

/// A two-token constant-product pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pool {
    /// Pool id.
    pub id: PoolId,
    /// First token.
    pub token0: Token,
    /// Second token.
    pub token1: Token,
    /// Reserve of `token0` in smallest units.
    pub reserve0: u128,
    /// Reserve of `token1` in smallest units.
    pub reserve1: u128,
}

/// Decoded payload of a `Swap` log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapLogData {
    /// Pool that executed the swap.
    pub pool: PoolId,
    /// Token paid in.
    pub token_in: Token,
    /// Token received.
    pub token_out: Token,
    /// Input amount (smallest units).
    pub amount_in: u128,
    /// Output amount (smallest units).
    pub amount_out: u128,
}

impl SwapLogData {
    /// Encodes into log `data` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(38);
        out.extend_from_slice(&self.pool.to_be_bytes());
        out.push(self.token_in.tag());
        out.push(self.token_out.tag());
        out.extend_from_slice(&self.amount_in.to_be_bytes());
        out.extend_from_slice(&self.amount_out.to_be_bytes());
        out
    }

    /// Decodes from log `data` bytes.
    pub fn decode(data: &[u8]) -> Option<SwapLogData> {
        if data.len() != 38 {
            return None;
        }
        Some(SwapLogData {
            pool: u32::from_be_bytes(data[0..4].try_into().ok()?),
            token_in: Token::from_tag(data[4])?,
            token_out: Token::from_tag(data[5])?,
            amount_in: u128::from_be_bytes(data[6..22].try_into().ok()?),
            amount_out: u128::from_be_bytes(data[22..38].try_into().ok()?),
        })
    }
}

impl Pool {
    /// Creates a pool with opening reserves.
    pub fn new(id: PoolId, token0: Token, token1: Token, reserve0: u128, reserve1: u128) -> Self {
        assert!(token0 != token1, "pool tokens must differ");
        assert!(reserve0 > 0 && reserve1 > 0, "reserves must be positive");
        Pool {
            id,
            token0,
            token1,
            reserve0,
            reserve1,
        }
    }

    /// The pool's deterministic contract address.
    pub fn contract(&self) -> Address {
        Address::derive(&format!("pool:{}:{}:{}", self.id, self.token0, self.token1))
    }

    /// Whether the pool trades `token`.
    pub fn trades(&self, token: Token) -> bool {
        self.token0 == token || self.token1 == token
    }

    /// The counterparty token for `token`.
    pub fn other(&self, token: Token) -> Option<Token> {
        if token == self.token0 {
            Some(self.token1)
        } else if token == self.token1 {
            Some(self.token0)
        } else {
            None
        }
    }

    fn reserves_for(&self, token_in: Token) -> Result<(u128, u128), AmmError> {
        if token_in == self.token0 {
            Ok((self.reserve0, self.reserve1))
        } else if token_in == self.token1 {
            Ok((self.reserve1, self.reserve0))
        } else {
            Err(AmmError::WrongToken(token_in))
        }
    }

    /// Quotes the output of swapping `amount_in` of `token_in`, without
    /// mutating the pool (the searcher's simulation path).
    pub fn quote(&self, token_in: Token, amount_in: u128) -> Result<u128, AmmError> {
        if amount_in == 0 {
            return Err(AmmError::ZeroAmount);
        }
        let (r_in, r_out) = self.reserves_for(token_in)?;
        let amount_in_with_fee = amount_in
            .checked_mul(10_000 - AMM_FEE_BPS)
            .ok_or(AmmError::InsufficientLiquidity)?;
        let numerator = amount_in_with_fee
            .checked_mul(r_out)
            .ok_or(AmmError::InsufficientLiquidity)?;
        let denominator = r_in
            .checked_mul(10_000)
            .and_then(|x| x.checked_add(amount_in_with_fee))
            .ok_or(AmmError::InsufficientLiquidity)?;
        // numerator/denominator < r_out always: the pool cannot be drained.
        Ok(numerator / denominator)
    }

    /// Executes a swap, mutating reserves; enforces `min_out`.
    pub fn swap(
        &mut self,
        token_in: Token,
        amount_in: u128,
        min_out: u128,
    ) -> Result<u128, AmmError> {
        let out = self.quote(token_in, amount_in)?;
        if out < min_out {
            return Err(AmmError::Slippage {
                available: out,
                min_out,
            });
        }
        if token_in == self.token0 {
            self.reserve0 += amount_in;
            self.reserve1 -= out;
        } else {
            self.reserve1 += amount_in;
            self.reserve0 -= out;
        }
        Ok(out)
    }

    /// Marginal price of `token0` in units of `token1`, decimals-adjusted.
    pub fn price0_in_1(&self) -> f64 {
        let r0 = self.reserve0 as f64 / 10f64.powi(self.token0.decimals() as i32);
        let r1 = self.reserve1 as f64 / 10f64.powi(self.token1.decimals() as i32);
        r1 / r0
    }

    /// The invariant `k = reserve0 × reserve1`.
    pub fn k(&self) -> u128 {
        self.reserve0 * self.reserve1
    }

    /// Builds the `Swap` event log for an executed swap.
    pub fn swap_log(&self, sender: Address, data: SwapLogData) -> Log {
        Log {
            address: self.contract(),
            topics: vec![Log::swap_topic(), pad_address(sender)],
            data: data.encode(),
        }
    }
}

impl simcore::Snapshot for Pool {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.id.encode(w);
        self.token0.encode(w);
        self.token1.encode(w);
        self.reserve0.encode(w);
        self.reserve1.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(Pool {
            id: simcore::Snapshot::decode(r)?,
            token0: simcore::Snapshot::decode(r)?,
            token1: simcore::Snapshot::decode(r)?,
            reserve0: simcore::Snapshot::decode(r)?,
            reserve1: simcore::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weth_usdc_pool() -> Pool {
        // 1000 WETH : 1.5M USDC → price 1500 USDC/WETH.
        Pool::new(
            0,
            Token::Weth,
            Token::Usdc,
            1000 * 10u128.pow(18),
            1_500_000 * 10u128.pow(6),
        )
    }

    #[test]
    fn spot_price_reflects_reserves() {
        let p = weth_usdc_pool();
        assert!((p.price0_in_1() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn small_swap_near_spot_price() {
        let p = weth_usdc_pool();
        // Swap 0.1 WETH: output ≈ 150 USDC minus 0.3% fee and tiny impact.
        let out = p.quote(Token::Weth, 10u128.pow(17)).unwrap();
        let usdc = out as f64 / 1e6;
        assert!(usdc > 149.0 && usdc < 149.9, "got {usdc}");
    }

    #[test]
    fn swap_moves_price_against_trader() {
        let mut p = weth_usdc_pool();
        let before = p.price0_in_1();
        p.swap(Token::Weth, 50 * 10u128.pow(18), 0).unwrap();
        let after = p.price0_in_1();
        assert!(after < before, "buying USDC with WETH must cheapen WETH");
    }

    #[test]
    fn k_never_decreases() {
        let mut p = weth_usdc_pool();
        let k0 = p.k();
        p.swap(Token::Weth, 10u128.pow(18), 0).unwrap();
        assert!(p.k() >= k0, "fee must grow k");
    }

    #[test]
    fn round_trip_loses_to_fees() {
        // Swap WETH→USDC→WETH: you end with less than you started.
        let mut p = weth_usdc_pool();
        let input = 10 * 10u128.pow(18);
        let usdc = p.swap(Token::Weth, input, 0).unwrap();
        let back = p.swap(Token::Usdc, usdc, 0).unwrap();
        assert!(back < input);
    }

    #[test]
    fn slippage_bound_enforced() {
        let mut p = weth_usdc_pool();
        let quote = p.quote(Token::Weth, 10u128.pow(18)).unwrap();
        let err = p.swap(Token::Weth, 10u128.pow(18), quote + 1).unwrap_err();
        assert!(matches!(err, AmmError::Slippage { .. }));
        // Pool untouched after the revert.
        assert_eq!(p, weth_usdc_pool());
    }

    #[test]
    fn wrong_token_rejected() {
        let p = weth_usdc_pool();
        assert_eq!(
            p.quote(Token::Dai, 100),
            Err(AmmError::WrongToken(Token::Dai))
        );
        assert!(!p.trades(Token::Dai));
        assert_eq!(p.other(Token::Weth), Some(Token::Usdc));
        assert_eq!(p.other(Token::Dai), None);
    }

    #[test]
    fn zero_swap_rejected() {
        let p = weth_usdc_pool();
        assert_eq!(p.quote(Token::Weth, 0), Err(AmmError::ZeroAmount));
    }

    #[test]
    fn overflowing_swap_rejected() {
        let p = Pool::new(1, Token::Weth, Token::Usdc, 10, 10);
        assert_eq!(
            p.quote(Token::Weth, u128::MAX / 2),
            Err(AmmError::InsufficientLiquidity)
        );
    }

    #[test]
    fn pool_cannot_be_drained() {
        // Even absurdly large (but non-overflowing) input leaves a reserve.
        let mut p = Pool::new(1, Token::Weth, Token::Usdc, 10, 10);
        let out = p.swap(Token::Weth, u64::MAX as u128, 0).unwrap();
        assert!(out < 10);
        assert!(p.reserve1 >= 1);
    }

    #[test]
    fn swap_log_data_round_trips() {
        let d = SwapLogData {
            pool: 7,
            token_in: Token::Weth,
            token_out: Token::LongTail(3),
            amount_in: 123_456_789,
            amount_out: 987_654_321,
        };
        assert_eq!(SwapLogData::decode(&d.encode()), Some(d));
        assert_eq!(SwapLogData::decode(&[0u8; 10]), None);
    }

    #[test]
    fn swap_log_carries_sender_topic() {
        let p = weth_usdc_pool();
        let sender = Address::derive("trader");
        let log = p.swap_log(
            sender,
            SwapLogData {
                pool: p.id,
                token_in: Token::Weth,
                token_out: Token::Usdc,
                amount_in: 1,
                amount_out: 1,
            },
        );
        assert_eq!(log.topics[0], Log::swap_topic());
        assert_eq!(eth_types::log::unpad_address(&log.topics[1]), sender);
        assert_eq!(log.address, p.contract());
    }
}
