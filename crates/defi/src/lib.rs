//! DeFi substrate — the source of organic MEV (paper §2.1, §5.4).
//!
//! "DeFi refers to a collection of smart contracts … typically transaction
//! order dependent," and that order dependence is where MEV comes from. The
//! crate implements the three protocol families whose interactions the
//! paper's MEV dataset labels:
//!
//! * [`amm`] — constant-product AMM pools (Uniswap-V2 math, 0.3% fee);
//!   cross-pool price divergence creates *cyclic arbitrage*, and pending
//!   user swaps create *sandwich* opportunities,
//! * [`lending`] — an overcollateralized lending market whose positions
//!   become liquidatable when the oracle moves (*liquidations*),
//! * [`oracle`] — the price oracle driving collateral valuations,
//! * [`world`] — the combined market state, wired into the execution layer
//!   as its [`execution::EffectBackend`]: swaps, liquidations, and oracle
//!   updates in blocks mutate this state and emit mainnet-shaped logs.

pub mod amm;
pub mod lending;
pub mod oracle;
pub mod world;

pub use amm::{Pool, PoolId, SwapLogData, AMM_FEE_BPS};
pub use lending::{LendingMarket, LiquidationLogData, Position};
pub use oracle::PriceOracle;
pub use world::DefiWorld;
