//! The combined DeFi world, wired into the execution layer.
//!
//! Holds every pool, the lending market, and the oracle, and implements
//! [`execution::EffectBackend`]: when the block executor encounters a
//! `Swap`, `Liquidate`, or `OracleUpdate` effect it dispatches here, market
//! state mutates, and the resulting logs/internal transfers flow back into
//! the block's receipts and traces — the artifacts the MEV detectors read.

use crate::amm::{Pool, PoolId, SwapLogData};
use crate::lending::LendingMarket;
use crate::oracle::PriceOracle;
use eth_types::{Token, Transaction, TxEffect, Wei};
use execution::{EffectBackend, EffectOutcome};

/// All DeFi market state.
#[derive(Debug, Clone, PartialEq)]
pub struct DefiWorld {
    pools: Vec<Pool>,
    market: LendingMarket,
    oracle: PriceOracle,
}

impl DefiWorld {
    /// Builds the standard world: a WETH/stable pool pair per stablecoin
    /// (two pools per pair make cyclic arbitrage possible), a WETH/WBTC
    /// pool, and `long_tail` thin WETH/long-tail pools.
    pub fn standard(long_tail: u8) -> Self {
        let mut pools = Vec::new();
        let mut id: PoolId = 0;
        let weth = 10u128.pow(18);
        // Two venues per WETH/stable pair with slightly different depth.
        for (stable, depth_eth) in [
            (Token::Usdc, 4000u128),
            (Token::Usdt, 2500),
            (Token::Dai, 2000),
        ] {
            for venue in 0..2u32 {
                let depth = depth_eth * (10 - venue as u128) / 10;
                let stable_units = depth * 1500 * 10u128.pow(stable.decimals() as u32);
                pools.push(Pool::new(
                    id,
                    Token::Weth,
                    stable,
                    depth * weth,
                    stable_units,
                ));
                id += 1;
            }
        }
        // WETH/WBTC (1 WBTC = 13.33 WETH at reference prices).
        pools.push(Pool::new(
            id,
            Token::Weth,
            Token::Wbtc,
            2000 * weth,
            150 * 10u128.pow(8),
        ));
        id += 1;
        // Thin long-tail pools: 60 WETH a side (in USD terms).
        for i in 0..long_tail {
            let t = Token::LongTail(i);
            let t_units =
                (60.0 * 1500.0 / t.reference_usd() * 10f64.powi(t.decimals() as i32)) as u128;
            pools.push(Pool::new(id, Token::Weth, t, 60 * weth, t_units));
            id += 1;
        }

        let oracle = PriceOracle::with_reference_prices(
            Token::MONITORED
                .into_iter()
                .chain((0..long_tail).map(Token::LongTail)),
        );
        DefiWorld {
            pools,
            market: LendingMarket::new(0),
            oracle,
        }
    }

    /// All pools.
    pub fn pools(&self) -> &[Pool] {
        &self.pools
    }

    /// A pool by id.
    pub fn pool(&self, id: PoolId) -> Option<&Pool> {
        self.pools.get(id as usize)
    }

    /// Mutable pool access (searcher simulation paths clone the world
    /// instead; this is for scenario setup).
    pub fn pool_mut(&mut self, id: PoolId) -> Option<&mut Pool> {
        self.pools.get_mut(id as usize)
    }

    /// The lending market.
    pub fn market(&self) -> &LendingMarket {
        &self.market
    }

    /// Mutable lending market access (scenario setup: opening positions).
    pub fn market_mut(&mut self) -> &mut LendingMarket {
        &mut self.market
    }

    /// The oracle.
    pub fn oracle(&self) -> &PriceOracle {
        &self.oracle
    }

    /// Mutable oracle access (scenario-driven price paths).
    pub fn oracle_mut(&mut self) -> &mut PriceOracle {
        &mut self.oracle
    }

    /// Pools trading both given tokens.
    pub fn pools_for_pair(&self, a: Token, b: Token) -> Vec<PoolId> {
        self.pools
            .iter()
            .filter(|p| p.trades(a) && p.trades(b))
            .map(|p| p.id)
            .collect()
    }

    /// Converts a USD profit figure into wei at the oracle's WETH price.
    pub fn usd_to_wei(&self, usd: f64) -> Wei {
        let eth_price = self.oracle.price_usd(Token::Weth).max(1e-9);
        Wei::from_eth((usd / eth_price).max(0.0))
    }
}

impl simcore::Snapshot for DefiWorld {
    fn encode(&self, w: &mut simcore::SnapWriter) {
        self.pools.encode(w);
        self.market.encode(w);
        self.oracle.encode(w);
    }

    fn decode(r: &mut simcore::SnapReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(DefiWorld {
            pools: simcore::Snapshot::decode(r)?,
            market: simcore::Snapshot::decode(r)?,
            oracle: simcore::Snapshot::decode(r)?,
        })
    }
}

impl EffectBackend for DefiWorld {
    fn apply(&mut self, tx: &Transaction) -> EffectOutcome {
        match &tx.effect {
            TxEffect::Swap {
                pool,
                token_in,
                token_out,
                amount_in,
                min_out,
            } => {
                let Some(p) = self.pools.get_mut(*pool as usize) else {
                    return EffectOutcome::Reverted;
                };
                if p.other(*token_in) != Some(*token_out) {
                    return EffectOutcome::Reverted;
                }
                match p.swap(*token_in, *amount_in, *min_out) {
                    Ok(amount_out) => {
                        let log = p.swap_log(
                            tx.sender,
                            SwapLogData {
                                pool: p.id,
                                token_in: *token_in,
                                token_out: *token_out,
                                amount_in: *amount_in,
                                amount_out,
                            },
                        );
                        EffectOutcome::Applied {
                            logs: vec![log],
                            transfers: Vec::new(),
                        }
                    }
                    Err(_) => EffectOutcome::Reverted,
                }
            }
            TxEffect::Liquidate {
                market: _,
                borrower,
            } => {
                match self.market.liquidate(tx.sender, *borrower, &self.oracle) {
                    Ok(outcome) => {
                        // The liquidation bonus flows to the liquidator as an
                        // internal ETH transfer from the market contract.
                        let bonus = self.usd_to_wei(outcome.profit_usd);
                        let transfers = if bonus.is_zero() {
                            Vec::new()
                        } else {
                            vec![(self.market.contract(), tx.sender, bonus)]
                        };
                        EffectOutcome::Applied {
                            logs: vec![outcome.log],
                            transfers,
                        }
                    }
                    Err(_) => EffectOutcome::Reverted,
                }
            }
            TxEffect::OracleUpdate {
                token,
                price_milli_usd,
            } => {
                self.oracle.set_price_milli_usd(*token, *price_milli_usd);
                EffectOutcome::Applied {
                    logs: Vec::new(),
                    transfers: Vec::new(),
                }
            }
            // Anything else is not a DeFi effect; the executor handles it.
            _ => EffectOutcome::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lending::Position;
    use eth_types::{Address, GasPrice};

    fn swap_tx(
        pool: PoolId,
        token_in: Token,
        token_out: Token,
        amount_in: u128,
        min_out: u128,
    ) -> Transaction {
        let mut tx = Transaction::transfer(
            Address::derive("trader"),
            Address::derive("router"),
            Wei::ZERO,
            0,
            GasPrice::from_gwei(1.0),
            GasPrice::from_gwei(100.0),
        );
        tx.effect = TxEffect::Swap {
            pool,
            token_in,
            token_out,
            amount_in,
            min_out,
        };
        tx.finalize()
    }

    #[test]
    fn standard_world_has_expected_venues() {
        let w = DefiWorld::standard(4);
        // 6 stable venues + 1 WBTC + 4 long-tail.
        assert_eq!(w.pools().len(), 11);
        assert_eq!(w.pools_for_pair(Token::Weth, Token::Usdc).len(), 2);
        assert_eq!(w.pools_for_pair(Token::Weth, Token::Wbtc).len(), 1);
        assert_eq!(w.pools_for_pair(Token::Usdc, Token::Usdt).len(), 0);
    }

    #[test]
    fn swap_effect_mutates_pool_and_logs() {
        let mut w = DefiWorld::standard(0);
        let before = w.pool(0).unwrap().reserve0;
        let tx = swap_tx(0, Token::Weth, Token::Usdc, 10u128.pow(18), 0);
        let out = w.apply(&tx);
        let EffectOutcome::Applied { logs, transfers } = out else {
            panic!("swap should apply");
        };
        assert_eq!(logs.len(), 1);
        assert!(transfers.is_empty());
        assert_eq!(w.pool(0).unwrap().reserve0, before + 10u128.pow(18));
        let data = SwapLogData::decode(&logs[0].data).unwrap();
        assert!(data.amount_out > 0);
    }

    #[test]
    fn swap_with_bad_min_out_reverts_without_mutation() {
        let mut w = DefiWorld::standard(0);
        let snapshot = w.clone();
        let tx = swap_tx(0, Token::Weth, Token::Usdc, 10u128.pow(18), u128::MAX);
        assert_eq!(w.apply(&tx), EffectOutcome::Reverted);
        assert_eq!(w, snapshot);
    }

    #[test]
    fn swap_on_missing_pool_or_wrong_pair_reverts() {
        let mut w = DefiWorld::standard(0);
        let tx = swap_tx(999, Token::Weth, Token::Usdc, 1, 0);
        assert_eq!(w.apply(&tx), EffectOutcome::Reverted);
        let tx = swap_tx(0, Token::Weth, Token::Dai, 1, 0); // pool 0 is WETH/USDC
        assert_eq!(w.apply(&tx), EffectOutcome::Reverted);
    }

    #[test]
    fn oracle_update_effect_applies() {
        let mut w = DefiWorld::standard(0);
        let mut tx = swap_tx(0, Token::Weth, Token::Usdc, 1, 0);
        tx.effect = TxEffect::OracleUpdate {
            token: Token::Usdc,
            price_milli_usd: 880,
        };
        let out = w.apply(&tx.finalize());
        assert!(matches!(out, EffectOutcome::Applied { .. }));
        assert_eq!(w.oracle().price_milli_usd(Token::Usdc), Some(880));
    }

    #[test]
    fn liquidation_effect_pays_bonus_transfer() {
        let mut w = DefiWorld::standard(0);
        w.market_mut().open_position(Position {
            borrower: Address::derive("victim"),
            collateral_token: Token::Weth,
            collateral: 10 * 10u128.pow(18),
            debt_token: Token::Usdc,
            debt: 10_000 * 10u128.pow(6),
        });
        w.oracle_mut().apply_move(Token::Weth, -0.30);

        let mut tx = swap_tx(0, Token::Weth, Token::Usdc, 1, 0);
        tx.sender = Address::derive("liquidator");
        tx.effect = TxEffect::Liquidate {
            market: 0,
            borrower: Address::derive("victim"),
        };
        let out = w.apply(&tx.finalize());
        let EffectOutcome::Applied { logs, transfers } = out else {
            panic!("liquidation should apply");
        };
        assert_eq!(logs.len(), 1);
        assert_eq!(transfers.len(), 1);
        let (from, to, bonus) = transfers[0];
        assert_eq!(from, w.market().contract());
        assert_eq!(to, Address::derive("liquidator"));
        assert!(bonus > Wei::ZERO);
    }

    #[test]
    fn liquidating_healthy_position_reverts() {
        let mut w = DefiWorld::standard(0);
        w.market_mut().open_position(Position {
            borrower: Address::derive("safe"),
            collateral_token: Token::Weth,
            collateral: 100 * 10u128.pow(18),
            debt_token: Token::Usdc,
            debt: 1_000 * 10u128.pow(6),
        });
        let mut tx = swap_tx(0, Token::Weth, Token::Usdc, 1, 0);
        tx.effect = TxEffect::Liquidate {
            market: 0,
            borrower: Address::derive("safe"),
        };
        assert_eq!(w.apply(&tx.finalize()), EffectOutcome::Reverted);
    }

    #[test]
    fn usd_conversion_uses_oracle() {
        let w = DefiWorld::standard(0);
        assert_eq!(w.usd_to_wei(1500.0), Wei::from_eth(1.0));
    }

    #[test]
    fn two_venues_diverge_after_one_sided_flow() {
        let mut w = DefiWorld::standard(0);
        let [a, b] = w.pools_for_pair(Token::Weth, Token::Usdc)[..] else {
            panic!("expected two venues");
        };
        // Push venue a's price away.
        w.pool_mut(a)
            .unwrap()
            .swap(Token::Weth, 200 * 10u128.pow(18), 0)
            .unwrap();
        let pa = w.pool(a).unwrap().price0_in_1();
        let pb = w.pool(b).unwrap().price0_in_1();
        assert!(
            (pa - pb).abs() / pb > 0.01,
            "venues should diverge: {pa} vs {pb}"
        );
    }
}
