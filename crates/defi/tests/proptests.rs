//! Property tests for the DeFi substrate: lending health monotonicity,
//! liquidation soundness, and oracle/world consistency.

use defi::{DefiWorld, LendingMarket, LiquidationLogData, Position, PriceOracle};
use eth_types::{Address, Token};
use proptest::prelude::*;

fn oracle() -> PriceOracle {
    PriceOracle::with_reference_prices(Token::MONITORED.into_iter())
}

proptest! {
    /// Health is monotone: more collateral or less debt never hurts.
    #[test]
    fn health_is_monotone(
        collateral in 1u64..1_000,
        debt in 1u64..1_000_000,
        extra in 1u64..1_000,
    ) {
        let o = oracle();
        let base = Position {
            borrower: Address::derive("b"),
            collateral_token: Token::Weth,
            collateral: collateral as u128 * 10u128.pow(16),
            debt_token: Token::Usdc,
            debt: debt as u128 * 10u128.pow(6),
        };
        let mut richer = base.clone();
        richer.collateral += extra as u128 * 10u128.pow(16);
        let mut lighter = base.clone();
        lighter.debt = lighter.debt.saturating_sub(extra as u128 * 10u128.pow(6)).max(1);
        prop_assert!(richer.health(&o) >= base.health(&o));
        prop_assert!(lighter.health(&o) >= base.health(&o));
    }

    /// A liquidation strictly reduces debt, seizes no more collateral than
    /// exists, and its log round-trips.
    #[test]
    fn liquidation_is_sound(
        collateral_weth in 1.0f64..50.0,
        health_target in 0.3f64..0.99,
    ) {
        let o = oracle();
        let weth_usd = o.price_usd(Token::Weth);
        // Construct a position at exactly the target (unhealthy) health.
        let debt_usd = collateral_weth * weth_usd * 0.80 / health_target;
        let position = Position {
            borrower: Address::derive("victim"),
            collateral_token: Token::Weth,
            collateral: (collateral_weth * 1e18) as u128,
            debt_token: Token::Usdc,
            debt: (debt_usd * 1e6) as u128,
        };
        let debt_before = position.debt;
        let collateral_before = position.collateral;
        prop_assume!(position.health(&o) < 1.0);

        let mut market = LendingMarket::new(0);
        market.open_position(position);
        let out = market
            .liquidate(Address::derive("liq"), Address::derive("victim"), &o)
            .unwrap();
        let data = LiquidationLogData::decode(&out.log.data).unwrap();
        prop_assert!(data.debt_repaid > 0);
        prop_assert!(data.debt_repaid <= debt_before);
        prop_assert!(data.collateral_seized <= collateral_before);
        prop_assert!(out.profit_usd >= 0.0);
        if let Some(p) = market.position(Address::derive("victim")) {
            prop_assert!(p.debt < debt_before);
        }
    }

    /// Liquidatable-set membership matches the health predicate exactly.
    #[test]
    fn liquidatable_matches_health(
        healths in proptest::collection::vec(0.5f64..2.0, 1..12)
    ) {
        let o = oracle();
        let weth_usd = o.price_usd(Token::Weth);
        let mut market = LendingMarket::new(0);
        for (i, h) in healths.iter().enumerate() {
            let collateral_weth = 10.0;
            let debt_usd = collateral_weth * weth_usd * 0.80 / h;
            market.open_position(Position {
                borrower: Address::derive(&format!("b{i}")),
                collateral_token: Token::Weth,
                collateral: (collateral_weth * 1e18) as u128,
                debt_token: Token::Usdc,
                debt: (debt_usd * 1e6) as u128,
            });
        }
        let flagged = market.liquidatable(&o);
        for (i, _) in healths.iter().enumerate() {
            let b = Address::derive(&format!("b{i}"));
            let h = market.position(b).unwrap().health(&o);
            prop_assert_eq!(flagged.contains(&b), h < 1.0, "health {}", h);
        }
    }

    /// USD valuation scales linearly with amount for every token.
    #[test]
    fn value_usd_is_linear(raw in 1u64..10u64.pow(12), k in 2u32..10) {
        let o = oracle();
        for token in Token::MONITORED {
            let v1 = o.value_usd(token, raw as u128);
            let vk = o.value_usd(token, raw as u128 * k as u128);
            prop_assert!((vk - v1 * k as f64).abs() <= v1 * k as f64 * 1e-9 + 1e-9);
        }
    }

    /// World oracle moves never corrupt pool reserves.
    #[test]
    fn oracle_moves_leave_pools_intact(moves in proptest::collection::vec(-0.5f64..0.5, 1..20)) {
        let mut world = DefiWorld::standard(2);
        let reserves: Vec<(u128, u128)> =
            world.pools().iter().map(|p| (p.reserve0, p.reserve1)).collect();
        for m in moves {
            world.oracle_mut().apply_move(Token::Weth, m);
        }
        for (pool, (r0, r1)) in world.pools().iter().zip(reserves) {
            prop_assert_eq!(pool.reserve0, r0);
            prop_assert_eq!(pool.reserve1, r1);
        }
    }
}
