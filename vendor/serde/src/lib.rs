//! Offline stand-in for `serde`.
//!
//! The real serde is generic over serializer backends; this workspace only
//! ever serializes to and from JSON (`serde_json::{to_string, from_str}`),
//! so the stand-in collapses the data model to one in-memory [`Value`]
//! tree: `Serialize` renders into it, `Deserialize` reads back out of it,
//! and the `serde_json` sibling crate handles text. The derive macros are
//! re-exported from `serde_derive`, so `#[derive(Serialize, Deserialize)]`
//! and `use serde::{Deserialize, Serialize}` work unchanged.
//!
//! Representation choices mirror upstream defaults where the workspace can
//! observe them: structs are ordered maps keyed by field name, newtype
//! structs are transparent, tuples and tuple structs are arrays, enums are
//! externally tagged, and `Option` is `null`-or-value.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The in-memory data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (covers every unsigned width up to u128).
    UInt(u128),
    /// Signed negative integer.
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Ordered map (insertion order preserved, like a struct's fields).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field by name in an object.
    pub fn get_field(&self, name: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected vs. what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description.
    pub message: String,
}

impl DeError {
    /// Builds an "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError {
            message: format!("expected {what}, found {}", found.kind()),
        }
    }

    /// Builds an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into the data model.
pub trait Serialize {
    /// Renders `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u128) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i128 = match v {
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t))))?,
                    Value::Int(i) => *i,
                    _ => return Err(DeError::expected(stringify!($t), v)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::msg(format!("{wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

// ---- composite impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}, found {got}")))
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::msg(format!(
                        "expected tuple of length {want}, found {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(0: A);
impl_tuple!(0: A, 1: B);
impl_tuple!(0: A, 1: B, 2: C);
impl_tuple!(0: A, 1: B, 2: C, 3: D);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E);

/// Map keys must render to a string (JSON object keys are strings).
pub trait SerializeKey {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
}

/// Map keys reconstructible from a string.
pub trait DeserializeKey: Sized {
    /// Parses the key back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

impl DeserializeKey for String {
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
        impl DeserializeKey for $t {
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::msg(format!("bad integer key {s:?}")))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted for stable output, matching how a BTreeMap would render.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: DeserializeKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

// ---- derive support ---------------------------------------------------

/// Looks up a struct field, defaulting to `Null` so `Option` fields
/// tolerate omission (generated code calls this).
pub fn struct_field<'v>(v: &'v Value, name: &str) -> &'v Value {
    const NULL: &Value = &Value::Null;
    v.get_field(name).unwrap_or(NULL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 42u64.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
        let v = (-3i64).to_value();
        assert_eq!(i64::from_value(&v).unwrap(), -3);
        let v = (u128::MAX).to_value();
        assert_eq!(u128::from_value(&v).unwrap(), u128::MAX);
        let v = 1.5f64.to_value();
        assert_eq!(f64::from_value(&v).unwrap(), 1.5);
        let v = Some("x".to_string()).to_value();
        assert_eq!(
            Option::<String>::from_value(&v).unwrap(),
            Some("x".to_string())
        );
        assert_eq!(Option::<String>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn composites_round_trip() {
        let original = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = Deserialize::from_value(&original.to_value()).unwrap();
        assert_eq!(back, original);
        let arr = [3u64; 3];
        let back: [u64; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(back, arr);
    }

    #[test]
    fn narrowing_is_checked() {
        let v = Value::UInt(300);
        assert!(u8::from_value(&v).is_err());
        assert!(u16::from_value(&v).is_ok());
    }
}
