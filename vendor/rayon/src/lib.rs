//! Offline stand-in for `rayon`.
//!
//! Provides the subset the workspace's hot paths use — `par_iter()` on
//! slices/`Vec`s with `map`/`collect`/`sum`/`reduce`, plus a global thread
//! count configured through `ThreadPoolBuilder::build_global` — implemented
//! with `std::thread::scope` over contiguous index chunks.
//!
//! The determinism contract is stronger than upstream's: every adapter
//! reassembles results **in input order** before handing them on, so a
//! `par_iter().map(f).collect::<Vec<_>>()` is bitwise-identical to the
//! sequential `iter().map(f).collect()` regardless of the thread count —
//! the property the simulation's byte-identical-artifacts guarantee builds
//! on. Work is split into as many contiguous chunks as there are threads;
//! scheduling jitter can change only *when* a chunk runs, never where its
//! results land.

use std::sync::atomic::{AtomicUsize, Ordering};

static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Configures the global thread count (the only knob this shim has).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build_global`] (never produced; the
/// shim allows reconfiguration, unlike upstream).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads; 0 means auto-detect.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the thread count globally. Infallible in this shim, and —
    /// deliberately unlike upstream — idempotent and re-entrant, so tests
    /// can flip the count between runs.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        NUM_THREADS.store(self.num_threads, Ordering::SeqCst);
        Ok(())
    }
}

/// The number of threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    match NUM_THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Worker threads actually spawned per call: the configured count clamped
/// to the host's cores. Spawning scoped threads beyond the core count is
/// pure overhead for CPU-bound chunks, and since results are always
/// reassembled in input order the clamp cannot change any output.
fn effective_threads(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    current_num_threads().min(cores).min(items).max(1)
}

/// Runs `f` over every item, returning results in input order.
fn ordered_parallel_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    let threads = effective_threads(items.len());
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for piece in items.chunks(chunk) {
            let f = &f;
            handles.push(scope.spawn(move || piece.iter().map(f).collect::<Vec<R>>()));
        }
        // Joining in spawn order restores input order exactly.
        for h in handles {
            out.extend(h.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every item in parallel; result order matches input order.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// The number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    fn run(self) -> Vec<R> {
        // The borrow in `F: Fn(&'a T)` outlives the scope, so delegating to
        // the helper keeps lifetimes simple.
        let f = self.f;
        let threads = effective_threads(self.items.len());
        if threads == 1 {
            return self.items.iter().map(f).collect();
        }
        let chunk = self.items.len().div_ceil(threads);
        let mut out: Vec<R> = Vec::with_capacity(self.items.len());
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for piece in self.items.chunks(chunk) {
                let f = &f;
                handles.push(scope.spawn(move || piece.iter().map(f).collect::<Vec<R>>()));
            }
            for h in handles {
                out.extend(h.join().expect("parallel map worker panicked"));
            }
        });
        out
    }

    /// Collects the mapped values in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Sums the mapped values. Addition over the result type must be
    /// associative for this to be order-independent; the workspace only
    /// sums integers (`u64`/`u128`/`Wei`), never floats, across threads.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        self.run().into_iter().sum()
    }

    /// Left-fold of the mapped values in input order.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Extension trait putting `.par_iter()` on slices and `Vec`s.
pub trait IntoParallelRefIterator<'data> {
    /// The element type.
    type Item: Sync + 'data;

    /// A parallel iterator over borrowed items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Standalone ordered parallel map, for callers that prefer a function to
/// the iterator adapters.
pub fn par_map<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: F) -> Vec<R> {
    ordered_parallel_map(items, f)
}

pub mod prelude {
    //! The glob import mirroring `rayon::prelude`.
    pub use crate::{IntoParallelRefIterator, ParIter, ParMap};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 4, 7] {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build_global()
                .unwrap();
            let par: Vec<u64> = items.par_iter().map(|x| x * 3 + 1).collect();
            assert_eq!(par, seq, "threads={threads}");
        }
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn sum_and_reduce_match_sequential() {
        let items: Vec<u64> = (1..=1000).collect();
        ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let s: u64 = items.par_iter().map(|x| *x).sum();
        assert_eq!(s, 500_500);
        let m = items.par_iter().map(|x| *x).reduce(|| 0, u64::max);
        assert_eq!(m, 1000);
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [5u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![6]);
    }
}
