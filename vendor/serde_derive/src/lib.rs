//! Offline stand-in for `serde_derive`.
//!
//! Generates `impl serde::Serialize` / `impl serde::Deserialize` for the
//! `Value`-tree data model of the vendored `serde` crate. Implemented
//! directly on `proc_macro::TokenStream` (no `syn`/`quote` — they are not
//! available offline): a small token walker extracts the type's shape
//! (struct fields / enum variants), and the impls are assembled as source
//! strings and re-parsed.
//!
//! Supported shapes — everything this workspace derives on:
//! named-field structs, tuple structs (1-field = transparent newtype,
//! matching upstream), unit structs, and enums whose variants are unit,
//! tuple, or named-field (externally tagged, matching upstream). Generic
//! types are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Walks the token stream of a `struct`/`enum` item and extracts its shape.
fn parse_input(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "the vendored serde derive does not support generic type `{name}`"
        ));
    }
    // Skip a where clause if present (scan forward to the body).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if matches!(g.delimiter(), Delimiter::Brace | Delimiter::Parenthesis) =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let shape = match (&tokens.get(i), kind) {
        (Some(TokenTree::Group(g)), "struct") if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream())?)
        }
        (Some(TokenTree::Group(g)), "struct") if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        (Some(TokenTree::Punct(p)), "struct") if p.as_char() == ';' => Shape::UnitStruct,
        (Some(TokenTree::Group(g)), "enum") if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream())?)
        }
        (other, _) => return Err(format!("unexpected item body {other:?}")),
    };
    Ok(Parsed { name, shape })
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // the [...] group
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `name: Type, ...` inside a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field {field}, found {other:?}")),
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advances past one type expression, stopping at a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth -= 1;
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *i += 1;
    }
}

/// Counts fields in a tuple-struct/tuple-variant paren group.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0usize;
    let mut count = 0usize;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0usize;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while i < tokens.len()
                && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',')
            {
                i += 1;
            }
        }
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---- code generation --------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from({vn:?})),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(String::from({vn:?}), \
                             ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from({vn:?}), \
                                 ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantShape::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (String::from({vn:?}), ::serde::Value::Object(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::struct_field(v, {f:?}))?"
                    )
                })
                .collect();
            format!(
                "if v.as_object().is_none() {{ \
                   return Err(::serde::DeError::expected(\"struct {name}\", v)); \
                 }} \
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| \
                   ::serde::DeError::expected(\"tuple struct {name}\", v))?; \
                 if items.len() != {n} {{ \
                   return Err(::serde::DeError::msg(format!(\
                     \"expected {n} fields for {name}, found {{}}\", items.len()))); \
                 }} \
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{ \
                                 let items = inner.as_array().ok_or_else(|| \
                                   ::serde::DeError::expected(\"variant data array\", inner))?; \
                                 if items.len() != {n} {{ \
                                   return Err(::serde::DeError::msg(\
                                     \"wrong arity for variant {vn}\")); \
                                 }} \
                                 Ok({name}::{vn}({})) }},",
                                items.join(", ")
                            ))
                        }
                        VariantShape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::struct_field(inner, {f:?}))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vn:?} => Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ \
                   {} \
                   other => Err(::serde::DeError::msg(format!(\
                     \"unknown variant {{other}} of {name}\"))), \
                 }}, \
                 ::serde::Value::Object(fields) if fields.len() == 1 => {{ \
                   let (tag, inner) = &fields[0]; \
                   match tag.as_str() {{ \
                     {} \
                     other => Err(::serde::DeError::msg(format!(\
                       \"unknown variant {{other}} of {name}\"))), \
                   }} \
                 }}, \
                 other => Err(::serde::DeError::expected(\"enum {name}\", other)), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derives `serde::Serialize` (vendored `Value`-tree flavor).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derives `serde::Deserialize` (vendored `Value`-tree flavor).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&e),
    }
}
