//! Offline stand-in for the `bytes` crate.
//!
//! The workspace's binary codec ([`eth-types::codec`]) needs a growable
//! write buffer, a cheaply-cloneable frozen buffer, and cursor-style reads
//! over `&[u8]`. This vendored crate provides exactly that surface with the
//! same names and semantics as the real `bytes` crate, so the codec code is
//! source-compatible with upstream.

use std::sync::Arc;

/// A cheaply-cloneable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.data.iter() {
            write!(f, "{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u128.
    fn put_u128(&mut self, v: u128) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor, copying out `dst.len()` bytes.
    ///
    /// Panics if fewer than `dst.len()` bytes remain, matching upstream.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True if at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Reads a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian u128.
    fn get_u128(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_freeze() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_slice(&[1, 2, 3]);
        m.put_u128(u128::MAX - 5);
        let frozen = m.freeze();
        assert_eq!(frozen.len(), 20);
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        let mut three = [0u8; 3];
        cursor.copy_to_slice(&mut three);
        assert_eq!(three, [1, 2, 3]);
        assert_eq!(cursor.get_u128(), u128::MAX - 5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u32();
    }
}
