//! Offline stand-in for `rand` 0.9.
//!
//! Provides the exact API surface the workspace uses — `Rng::random`,
//! `Rng::random_range`, `Rng::random_iter`, `Rng::random_bool`,
//! `SeedableRng::{from_seed, seed_from_u64}` and `rngs::StdRng` — backed by
//! xoshiro256** instead of upstream's ChaCha12. The statistical quality is
//! more than sufficient for the simulation's samplers (the dist tests
//! assert means/variances to ~1%), and the generator is fully deterministic
//! for a given seed, which is the property the repo's reproducibility
//! contract actually relies on.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills a byte slice with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator ("standard"
/// distribution in upstream terms).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        ((g.next_u64() as u128) << 64) | g.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        u128::sample(g) as i128
    }
}

impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        (g.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<G: RngCore + ?Sized>(g: &mut G) -> Self {
        let mut out = [0u8; N];
        g.fill_bytes(&mut out);
        out
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range; panics on an empty range.
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                // Widening-multiply bounded draw (Lemire, without the
                // rejection step: bias < 2^-64 per draw, far below what any
                // statistical assertion in this workspace can see).
                let r = u128::from(g.next_u64());
                self.start + ((r * span) >> 64) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                let r = u128::from(g.next_u64());
                lo + ((r * span) >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(g.next_u64());
                (self.start as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_sint!(i32 => u32, i64 => u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(g) * (self.end - self.start)
    }
}

/// High-level convenience methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferable type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// An infinite iterator of uniform draws, consuming the generator.
    fn random_iter<T: Standard>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Iterator over uniform draws (see [`Rng::random_iter`]).
pub struct RandomIter<R, T> {
    rng: R,
    _marker: std::marker::PhantomData<T>,
}

impl<R: RngCore, T: Standard> Iterator for RandomIter<R, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        Some(T::sample(&mut self.rng))
    }
}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    ///
    /// Deterministic, `Clone`-able (clones replay the identical stream),
    /// and seeded either from 32 bytes or a single word.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] output, resuming the
        /// stream exactly where it was captured.
        pub fn from_state(s: [u64; 4]) -> Self {
            // Preserve the all-zero guard of `from_seed`: a zero state would
            // lock xoshiro at zero forever.
            if s == [0; 4] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro's state must not be all zero; remix through splitmix
            // so even degenerate seeds (and raw hash output) decorrelate.
            let mut mix = s[0] ^ s[1].rotate_left(1) ^ s[2].rotate_left(2) ^ s[3].rotate_left(3);
            for word in s.iter_mut() {
                *word ^= splitmix64(&mut mix);
            }
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut mix = state;
            let mut seed = [0u8; 32];
            for i in 0..4 {
                seed[i * 8..i * 8 + 8].copy_from_slice(&splitmix64(&mut mix).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = StdRng::seed_from_u64(42).random_iter().take(16).collect();
        let b: Vec<u64> = StdRng::seed_from_u64(42).random_iter().take(16).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = StdRng::seed_from_u64(43).random_iter().take(16).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn unit_interval_is_uniform_enough() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = r.random_range(5u64..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn bool_rate_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.random_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn state_round_trips_mid_stream() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.random::<u64>();
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a.random::<u128>(), b.random::<u128>());
        // The zero guard matches from_seed's degenerate-seed behavior.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.random::<u64>(), 0);
    }

    #[test]
    fn clones_replay_the_stream() {
        let mut a = StdRng::seed_from_u64(1);
        let _ = a.random::<u64>();
        let mut b = a.clone();
        assert_eq!(a.random::<u128>(), b.random::<u128>());
    }
}
