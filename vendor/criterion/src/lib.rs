//! Offline stand-in for `criterion`.
//!
//! Mirrors the macro and builder surface the workspace's benches use
//! (`criterion_group!` in both the simple and `name/config/targets` forms,
//! `criterion_main!`, `Criterion::default().sample_size(..)`,
//! `benchmark_group`, `throughput`, `bench_function`, `iter`,
//! `iter_batched`) with a deliberately small measurement core: a short
//! warm-up, then `sample_size` timed passes, reporting the median
//! nanoseconds per iteration on stdout. No plots, no statistics engine —
//! enough to compile everywhere and give honest relative numbers when the
//! benches are actually run.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (reported alongside timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How batched setup output is sized (accepted for API parity; the shim
/// always regenerates the input per iteration, which is `SmallInput`
/// behavior).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Setup output is cheap to hold per-iteration.
    SmallInput,
    /// Setup output is expensive; upstream amortizes it.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Far below upstream's 100: these benches wrap whole-simulation
        // runs, and the shim is for smoke timing, not statistics.
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group sharing throughput/sample settings.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{id}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this is a no-op that consumes the group).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; measures the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, called back-to-back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up pass.
        let _ = routine();
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            let _ = std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }

    /// Times `routine` with a fresh `setup()` input per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let _ = routine(setup());
        let mut total = Duration::ZERO;
        for _ in 0..self.iters_per_sample {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.samples.push(total / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("bench {name}: no samples recorded");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let ns = median.as_nanos().max(1);
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mib_s = bytes as f64 / (ns as f64 / 1e9) / (1024.0 * 1024.0);
            println!("bench {name}: {ns} ns/iter ({mib_s:.1} MiB/s)");
        }
        Some(Throughput::Elements(n)) => {
            let elems_s = n as f64 / (ns as f64 / 1e9);
            println!("bench {name}: {ns} ns/iter ({elems_s:.0} elem/s)");
        }
        None => println!("bench {name}: {ns} ns/iter"),
    }
}

/// Declares a benchmark group function, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point. Marked allow(dead_code): under the
/// default libtest harness `cargo test` compiles benches with `--test`,
/// where this `main` is shadowed by the generated harness.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut count = 0u32;
        c.bench_function("smoke", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("counted", |b| {
            count += 1;
            b.iter(|| ())
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn groups_and_batched_iter_work() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
