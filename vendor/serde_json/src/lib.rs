//! Offline stand-in for `serde_json`.
//!
//! Text front-end for the vendored `serde` crate's [`Value`] data model:
//! [`to_string`] renders compact JSON (no whitespace, object fields in
//! `Value::Object` order, which for derived structs is declaration order),
//! and [`from_str`] is a recursive-descent parser. Output is fully
//! deterministic — a given `Value` always renders to the same bytes — which
//! is what the simulation's byte-identical-artifacts contract rests on.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---- writer -----------------------------------------------------------

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

fn write_value(v: &Value, out: &mut String) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            let s = f.to_string();
            out.push_str(&s);
            // Keep float-ness through a round trip: `1f64` displays as "1".
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_str(s)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the raw [`Value`] tree.
pub fn parse_value_str(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    match bytes.get(*pos) {
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        other => Err(Error::new(format!(
            "unexpected input {other:?} at byte {pos}"
        ))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("bad \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(Error::new(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 char.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u128>()
            .map(|u| Value::Int(-(u as i128)))
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    } else {
        text.parse::<u128>()
            .map(Value::UInt)
            .map_err(|_| Error::new(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_composites() {
        let original: Vec<(u64, String, Option<f64>)> = vec![
            (1, "alpha".into(), Some(1.5)),
            (2, "br\"ckt\\s\n".into(), None),
        ];
        let text = to_string(&original).unwrap();
        let back: Vec<(u64, String, Option<f64>)> = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn negative_and_wide_integers() {
        let text = to_string(&(-42i64)).unwrap();
        assert_eq!(text, "-42");
        assert_eq!(from_str::<i64>(&text).unwrap(), -42);
        let big = u128::MAX;
        let text = to_string(&big).unwrap();
        assert_eq!(from_str::<u128>(&text).unwrap(), big);
    }

    #[test]
    fn output_is_deterministic() {
        let v: Vec<u32> = (0..50).collect();
        assert_eq!(to_string(&v).unwrap(), to_string(&v).unwrap());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
