//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's test suites
//! use: the `proptest!` macro (with optional `#![proptest_config(...)]`),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `any::<T>()`, range strategies over integers and floats, tuple
//! strategies, `proptest::collection::vec`, and a tiny regex-ish string
//! generator covering the two patterns that appear in the tests
//! (`"[a-z]{1,12}"` and `"\PC{0,64}"`).
//!
//! Differences from upstream, deliberate for an offline shim: no shrinking
//! (a failing case reports its values instead), and seeding is derived
//! from the test name, so runs are reproducible without a persistence
//! file.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---- runner -----------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject(String),
}

/// Runner configuration (only the knob the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default.
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property test: generates inputs until `cases` accepted runs
/// pass, panicking on the first failure. Called by generated test fns.
pub fn run_config<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::new(fnv1a(name.as_bytes()));
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = u64::from(config.cases.max(1)) * 50 + 1000;
    while accepted < config.cases {
        attempts += 1;
        if attempts > max_attempts {
            panic!(
                "proptest {name}: too many rejects ({attempts} attempts for \
                 {accepted}/{} accepted cases)",
                config.cases
            );
        }
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest {name} failed at case {accepted}: {msg}")
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- rng --------------------------------------------------------------

/// The generator strategies draw from (splitmix64 — statistical quality is
/// ample for input generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        // Modulo bias is ~2^-64 at worst here — irrelevant for test input
        // generation (there is no shrinking to distort either).
        self.next_u128() % bound
    }

    /// Uniform in `[0, bound)` for usize bounds.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below_u128(bound as u128) as usize
    }
}

// ---- strategies -------------------------------------------------------

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u128() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.next_u64() & 1 == 1 {
            -mag
        } else {
            mag
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// Marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                self.start + rng.below_u128(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u128() as $t;
                }
                lo + rng.below_u128(span) as $t
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_range_strategy_sint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below_u128(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                if span == 0 {
                    return rng.next_u128() as $t;
                }
                (lo + rng.below_u128(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_sint!(i8, i16, i32, i64, i128, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

// ---- string patterns --------------------------------------------------

/// String literals act as (tiny) regex-style generators.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// Generates a string from the regex subset the tests use: literal chars,
/// `[a-z0-9_]`-style classes with ranges, `\PC` (any non-control char),
/// each optionally followed by `{m,n}`.
fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = String::new();
    while i < chars.len() {
        let piece = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|off| i + off)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class: Vec<char> = chars[i + 1..close].to_vec();
                i = close + 1;
                Piece::Class(parse_class(&class, pattern))
            }
            '\\' => {
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Piece::NonControl
                } else {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                    i += 2;
                    Piece::Literal(c)
                }
            }
            c => {
                i += 1;
                Piece::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|off| i + off)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            let (lo, hi) = spec
                .split_once(',')
                .unwrap_or_else(|| panic!("bad repetition {spec:?} in pattern {pattern:?}"));
            (
                lo.trim().parse::<usize>().expect("bad repetition min"),
                hi.trim().parse::<usize>().expect("bad repetition max"),
            )
        } else {
            (1, 1)
        };
        let count = min + rng.below_usize(max - min + 1);
        for _ in 0..count {
            out.push(piece.sample(rng));
        }
    }
    out
}

enum Piece {
    Literal(char),
    Class(Vec<(char, char)>),
    NonControl,
}

impl Piece {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Piece::Literal(c) => *c,
            Piece::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.below_u128(u128::from(total)) as u32;
                for (lo, hi) in ranges {
                    let width = *hi as u32 - *lo as u32 + 1;
                    if pick < width {
                        return char::from_u32(*lo as u32 + pick).unwrap();
                    }
                    pick -= width;
                }
                unreachable!()
            }
            Piece::NonControl => {
                // Mostly printable ASCII with a sprinkling of multi-byte
                // code points, all non-control as `\PC` requires.
                const WIDE: &[char] = &['é', 'ß', 'λ', '→', '試', '𝛑', '🦀'];
                if rng.below_usize(5) == 0 {
                    WIDE[rng.below_usize(WIDE.len())]
                } else {
                    char::from_u32(0x20 + rng.below_u128(0x7f - 0x20) as u32).unwrap()
                }
            }
        }
    }
}

fn parse_class(class: &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            ranges.push((class[i], class[i + 2]));
            i += 3;
        } else if i + 2 == class.len() && class[i + 1] == '-' {
            ranges.push((class[i], class[i + 2 - 1].max(class[i])));
            i += 2;
        } else {
            ranges.push((class[i], class[i]));
            i += 1;
        }
    }
    assert!(
        !ranges.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    ranges
}

// ---- collections ------------------------------------------------------

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Types usable as the element-count bound of [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) element counts.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.min + rng.below_usize(self.max - self.min + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros -----------------------------------------------------------

/// The property-test entry point; mirrors upstream's surface syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { @config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each `fn` in a `proptest!` block. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::run_config(&config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_each! { @config ($config) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right,
            )));
        }
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), left,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  both: {:?}", format!($($fmt)+), left,
            )));
        }
    }};
}

/// Rejects the current case (retried, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

pub mod prelude {
    //! The glob import mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 5u64..=5, f in -1.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn tuples_and_vecs_generate(
            pair in (1u32..100, any::<bool>()),
            items in crate::collection::vec(any::<u8>(), 2..6),
        ) {
            prop_assert!(pair.0 >= 1 && pair.0 < 100);
            prop_assert!(items.len() >= 2 && items.len() < 6);
        }

        #[test]
        fn string_patterns_match_shape(a in "[a-z]{1,12}", s in "\\PC{0,64}") {
            prop_assert!(!a.is_empty() && a.len() <= 12);
            prop_assert!(a.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(s.chars().count() <= 64);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn assume_retries(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn arrays_are_arbitrary() {
        let mut rng = TestRng::new(7);
        let a: [u8; 20] = Arbitrary::arbitrary(&mut rng);
        let b: [u8; 20] = Arbitrary::arbitrary(&mut rng);
        assert_ne!(a, b);
    }
}
